//! Vendored offline stand-in for the slice of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the benches run on this
//! minimal harness: `Criterion::{bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each benchmark runs enough
//! iterations to fill a fixed measurement window (default 300 ms, or
//! `CRITERION_MEASURE_MS`), split into samples so the report can show
//! median and spread rather than a single mean. No plotting, no statistical
//! regression — the numbers print to stdout in a stable, diffable format.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many iterations `iter_batched` runs per setup batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// Exactly one iteration per batch.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            warm_up: Duration::from_millis(measure_ms / 3),
            measurement: Duration::from_millis(measure_ms),
            samples: 10,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        report(id, b.result);
        self
    }

    /// Start a named group; member benchmarks print as `group/label`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
struct Stats {
    min: f64,
    median: f64,
    max: f64,
}

/// Runs the measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: u32,
    result: Option<Stats>,
}

impl Bencher {
    /// Measure `routine` called in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates iterations/second for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let iters = ((per_sample / per_iter).ceil() as u64).max(1);

        let mut sample_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(stats_of(&mut sample_ns));
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up and per-iteration estimate.
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_spent < self.warm_up || warm_iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_spent += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let iters = ((per_sample / per_iter).ceil() as u64).max(1);

        let mut sample_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            sample_ns.push(spent.as_nanos() as f64 / iters as f64);
        }
        self.result = Some(stats_of(&mut sample_ns));
    }
}

fn stats_of(samples: &mut [f64]) -> Stats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Stats {
        min: samples[0],
        median: samples[samples.len() / 2],
        max: samples[samples.len() - 1],
    }
}

fn report(id: &str, stats: Option<Stats>) {
    match stats {
        Some(s) => println!(
            "{id:<44} time: [{} {} {}]",
            fmt_ns(s.min),
            fmt_ns(s.median),
            fmt_ns(s.max)
        ),
        None => println!("{id:<44} (no measurement)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_measurement() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
        std::env::remove_var("CRITERION_MEASURE_MS");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        std::env::remove_var("CRITERION_MEASURE_MS");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.3456), "12.35 ns");
        assert!(fmt_ns(12_345.6).contains("µs"));
        assert!(fmt_ns(12_345_678.0).contains("ms"));
    }
}
