//! Traceroute-only localization baseline (§5.3).
//!
//! What an operator without LIFEGUARD does: run a traceroute, blame the
//! network where it dies. Under forward failures this is often right; under
//! reverse-path failures the traceroute terminates wherever responses stop
//! coming *home*, implicating an innocent forward-path AS (Fig 4).

use lg_asmap::AsId;
use lg_probe::{Prober, Traceroute};
use lg_sim::dataplane::DataPlane;
use lg_sim::Time;

/// The AS a traceroute-only diagnosis blames: the last responsive hop's AS
/// (operators usually read the failure as "just past the last hop I can
/// see", but without the atlas they cannot name the next AS, so the
/// terminating AS is what gets reported — as in the Fig 4 example, where
/// the traceroute "suggests the problem is between TransTelecom and
/// ZSTTK").
pub fn traceroute_only_blame(tr: &Traceroute) -> Option<AsId> {
    if tr.reached_destination {
        return None;
    }
    tr.last_responsive_as()
}

/// Run the baseline end-to-end: one traceroute, one blame.
pub fn run_baseline(
    dp: &DataPlane<'_>,
    prober: &mut Prober,
    now: Time,
    src: AsId,
    dst_addr: u32,
) -> Option<AsId> {
    let tr = prober.traceroute(dp, now, src, dst_addr);
    traceroute_only_blame(&tr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_asmap::{GraphBuilder, RouterId};
    use lg_probe::TrbHop;

    #[test]
    fn blames_last_responsive_hop() {
        let tr = Traceroute {
            hops: vec![
                TrbHop {
                    router: RouterId::border(AsId(1), AsId(0)),
                    responded: true,
                },
                TrbHop {
                    router: RouterId::border(AsId(2), AsId(1)),
                    responded: false,
                },
            ],
            reached_destination: false,
        };
        assert_eq!(traceroute_only_blame(&tr), Some(AsId(1)));
    }

    #[test]
    fn no_blame_when_destination_reached() {
        let tr = Traceroute {
            hops: vec![TrbHop {
                router: RouterId::border(AsId(1), AsId(0)),
                responded: true,
            }],
            reached_destination: true,
        };
        assert_eq!(traceroute_only_blame(&tr), None);
    }

    #[test]
    fn baseline_misblames_reverse_failure() {
        use lg_sim::dataplane::{infra_addr, infra_prefix};
        use lg_sim::failures::Failure;
        use lg_sim::Network;
        // Line 0-1-2-3; reverse failure in AS2 toward AS0's prefix. The
        // true culprit is AS2 but traceroute stops at AS1.
        let mut g = GraphBuilder::with_ases(4);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(1));
        g.provider_customer(AsId(3), AsId(2));
        let net = Network::new(g.build());
        let mut dp = DataPlane::new(&net);
        dp.ensure_infra_all();
        dp.failures_mut()
            .add(Failure::silent_as_toward(AsId(2), infra_prefix(AsId(0))));
        let mut prober = Prober::with_defaults();
        let blame = run_baseline(&dp, &mut prober, Time::ZERO, AsId(0), infra_addr(AsId(3)));
        assert_eq!(blame, Some(AsId(1)), "baseline blames the wrong AS");
    }
}
