//! Export-policy predicates: valley-free paths and the observed three-tuple
//! test.
//!
//! The paper validates spliced and simulated paths against export policy in
//! two ways: the classic Gao valley-free rule (an AS path must climb
//! customer→provider links, cross at most one peer link, then descend
//! provider→customer links), and an empirical "three-tuple" test (§2.2,
//! §5.1): a subpath `a-b-c` is considered exportable if that AS triple was
//! observed in at least one real path during the measurement window. Both are
//! implemented here.

use crate::graph::AsGraph;
use crate::ids::AsId;
use crate::relationship::Relationship;
use std::collections::HashSet;

/// True when `path` (origin last or first — direction-symmetric) is
/// valley-free under the relationships in `graph`.
///
/// Returns `false` when consecutive ASes are not adjacent, when an AS
/// repeats, or when the up*/peer?/down* shape is violated.
pub fn is_valley_free(graph: &AsGraph, path: &[AsId]) -> bool {
    if path.len() < 2 {
        return true;
    }
    let mut seen = HashSet::with_capacity(path.len());
    if !path.iter().all(|a| seen.insert(*a)) {
        return false;
    }
    // Phases: 0 = climbing (customer→provider hops), 1 = crossed the single
    // allowed peer link, 2 = descending (provider→customer hops).
    let mut phase = 0u8;
    for w in path.windows(2) {
        // Relationship of the *sender* (w[0]) toward the receiver (w[1]):
        // hop is "up" when w[1] is w[0]'s provider.
        let rel = match graph.relationship(w[0], w[1]) {
            Some(r) => r,
            None => return false,
        };
        match rel {
            Relationship::Provider => {
                // Going up: only allowed before any peer/down hop.
                if phase != 0 {
                    return false;
                }
            }
            Relationship::Peer => {
                if phase != 0 {
                    return false;
                }
                phase = 1;
            }
            Relationship::Customer => {
                // Going down: always allowed; locks the phase.
                phase = 2;
            }
        }
    }
    true
}

/// A set of observed AS triples used as an empirical export-policy test.
///
/// `allows(a, b, c)` answers whether the centered subpath `a-b-c` has been
/// observed; the paper accepts a spliced path only if every length-3 AS
/// subpath centered at the splice point passes this test, which suffices to
/// encode the common valley-free export policy without knowing
/// relationships. Triples are stored direction-insensitively because a path
/// observed in one direction witnesses the adjacency policy of both.
#[derive(Default, Debug, Clone)]
pub struct TripleSet {
    triples: HashSet<(AsId, AsId, AsId)>,
    pairs: HashSet<(AsId, AsId)>,
}

impl TripleSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record every AS triple (and adjacent pair) appearing in `path`.
    pub fn observe_path(&mut self, path: &[AsId]) {
        for w in path.windows(2) {
            self.pairs.insert(Self::norm2(w[0], w[1]));
        }
        for w in path.windows(3) {
            self.triples.insert(Self::norm3(w[0], w[1], w[2]));
        }
    }

    /// Build from an iterator of paths.
    pub fn from_paths<'a, I: IntoIterator<Item = &'a [AsId]>>(paths: I) -> Self {
        let mut s = Self::new();
        for p in paths {
            s.observe_path(p);
        }
        s
    }

    fn norm2(a: AsId, b: AsId) -> (AsId, AsId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn norm3(a: AsId, b: AsId, c: AsId) -> (AsId, AsId, AsId) {
        if a <= c {
            (a, b, c)
        } else {
            (c, b, a)
        }
    }

    /// Whether the AS triple `a-b-c` was observed in any path.
    pub fn allows(&self, a: AsId, b: AsId, c: AsId) -> bool {
        self.triples.contains(&Self::norm3(a, b, c))
    }

    /// Whether adjacency `a-b` was observed in any path.
    pub fn allows_pair(&self, a: AsId, b: AsId) -> bool {
        self.pairs.contains(&Self::norm2(a, b))
    }

    /// Whether a full AS `path` passes the test: every internal triple
    /// observed, every adjacency observed, and no AS repeated.
    pub fn allows_path(&self, path: &[AsId]) -> bool {
        let mut seen = HashSet::with_capacity(path.len());
        if !path.iter().all(|a| seen.insert(*a)) {
            return false;
        }
        if !path.windows(2).all(|w| self.allows_pair(w[0], w[1])) {
            return false;
        }
        path.windows(3).all(|w| self.allows(w[0], w[1], w[2]))
    }

    /// Number of distinct triples observed.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 and 1 are tier-1 peers; 0 provides to 2, 1 provides to 3; 2 and 3
    /// are peers; 2 provides to 4, 3 provides to 5.
    fn diamond() -> AsGraph {
        let mut b = GraphBuilder::with_ases(6);
        b.peer(AsId(0), AsId(1));
        b.provider_customer(AsId(0), AsId(2));
        b.provider_customer(AsId(1), AsId(3));
        b.peer(AsId(2), AsId(3));
        b.provider_customer(AsId(2), AsId(4));
        b.provider_customer(AsId(3), AsId(5));
        b.build()
    }

    #[test]
    fn up_peer_down_is_valley_free() {
        let g = diamond();
        // 4 -> 2 (up) -> 0 (up) -> 1 (peer) -> 3 (down) -> 5 (down)
        assert!(is_valley_free(
            &g,
            &[AsId(4), AsId(2), AsId(0), AsId(1), AsId(3), AsId(5)]
        ));
    }

    #[test]
    fn peer_then_peer_is_a_valley() {
        let g = diamond();
        // 4 -> 2 (up) -> 3 (peer) -> 1 (up!) would be a valley; also
        // 0 -> 1 peer then 3 down then 2 peer again is invalid.
        assert!(!is_valley_free(&g, &[AsId(0), AsId(1), AsId(3), AsId(2)]));
    }

    #[test]
    fn down_then_up_is_a_valley() {
        let g = diamond();
        // 0 -> 2 (down) -> 3 (peer after down) invalid.
        assert!(!is_valley_free(&g, &[AsId(0), AsId(2), AsId(3)]));
        // 1 -> 3 (down) -> 5 (down) ok.
        assert!(is_valley_free(&g, &[AsId(1), AsId(3), AsId(5)]));
    }

    #[test]
    fn non_adjacent_or_repeating_fails() {
        let g = diamond();
        assert!(!is_valley_free(&g, &[AsId(0), AsId(5)]));
        assert!(!is_valley_free(&g, &[AsId(0), AsId(2), AsId(0)]));
    }

    #[test]
    fn short_paths_trivially_pass() {
        let g = diamond();
        assert!(is_valley_free(&g, &[AsId(0)]));
        assert!(is_valley_free(&g, &[]));
    }

    #[test]
    fn triple_set_membership() {
        let mut t = TripleSet::new();
        t.observe_path(&[AsId(4), AsId(2), AsId(0), AsId(1)]);
        assert!(t.allows(AsId(4), AsId(2), AsId(0)));
        assert!(t.allows(AsId(2), AsId(0), AsId(1)));
        // Reverse direction counts as observed.
        assert!(t.allows(AsId(0), AsId(2), AsId(4)));
        assert!(!t.allows(AsId(4), AsId(0), AsId(2)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn triple_set_path_test() {
        let t = TripleSet::from_paths([
            &[AsId(4), AsId(2), AsId(0), AsId(1)][..],
            &[AsId(1), AsId(3), AsId(5)][..],
        ]);
        assert!(t.allows_path(&[AsId(4), AsId(2), AsId(0), AsId(1)]));
        // Spliced path whose center triples were never observed:
        assert!(!t.allows_path(&[AsId(2), AsId(0), AsId(1), AsId(3)]));
        // Repeated AS never allowed.
        assert!(!t.allows_path(&[AsId(4), AsId(2), AsId(4)]));
        // Unobserved adjacency rejected even with no triple.
        assert!(!t.allows_path(&[AsId(4), AsId(5)]));
        // Observed adjacency-only path accepted.
        assert!(t.allows_path(&[AsId(4), AsId(2)]));
    }
}
