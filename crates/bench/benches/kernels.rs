//! Criterion micro-benchmarks for the performance-critical primitives:
//! static route computation, data-plane walks, the wire codec, and the
//! isolation pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lg_asmap::{AsId, TopologyConfig};
use lg_atlas::{Atlas, RefreshScheduler, ResponsivenessDb};
use lg_bgp::wire::{Codec, Message, Origin, UpdateMsg};
use lg_bgp::{AsPath, Prefix};
use lg_locate::Isolator;
use lg_probe::Prober;
use lg_sim::dataplane::{infra_addr, infra_prefix, DataPlane};
use lg_sim::failures::Failure;
use lg_sim::{compute_routes, AnnouncementSpec, Network, RouteComputer, RouteTableCache, Time};

fn bench_route_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_route_computation");
    for (label, cfg) in [
        ("small_~50as", TopologyConfig::small(1)),
        ("medium_~1000as", TopologyConfig::medium(1)),
        ("large_~10000as", TopologyConfig::large(1)),
        // The Internet-calibrated shape: same AS count as `large` but
        // power-law degrees and a deep stub fringe — the frontier
        // engine's target workload.
        ("calibrated_10000as", TopologyConfig::calibrated_10k(1)),
    ] {
        let net = Network::new(cfg.generate());
        let origin = net
            .graph()
            .ases()
            .find(|a| net.graph().is_stub(*a))
            .unwrap();
        let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
        let spec = AnnouncementSpec::prepended(&net, prefix, origin, 3);
        group.bench_function(label, |b| {
            b.iter(|| compute_routes(&net, &spec));
        });
    }
    group.finish();
}

fn bench_compute_layer(c: &mut Criterion) {
    let net = Network::new(TopologyConfig::medium(1).generate());
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a))
        .unwrap();
    let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
    let spec = AnnouncementSpec::prepended(&net, prefix, origin, 3);

    let mut group = c.benchmark_group("compute_layer");
    // The retained pre-arena engine: the baseline the allocation-lean inner
    // loop is measured against.
    group.bench_function("reference_engine_medium", |b| {
        b.iter(|| lg_sim::static_routes::compute_routes_reference(&net, &spec));
    });
    group.bench_function("scratch_medium", |b| {
        b.iter(|| compute_routes(&net, &spec));
    });
    group.bench_function("cache_hit_medium", |b| {
        let mut cache = RouteTableCache::new();
        let _ = cache.compute(&net, &spec);
        b.iter(|| cache.compute(&net, &spec));
    });

    // A repair-planner-shaped batch: one poisoned what-if per transit AS.
    let base = compute_routes(&net, &spec);
    let targets: Vec<AsId> = net
        .graph()
        .ases()
        .filter(|a| !net.graph().is_stub(*a) && base.has_route(*a))
        .take(16)
        .collect();
    let specs: Vec<AnnouncementSpec> = targets
        .iter()
        .map(|t| AnnouncementSpec::poisoned(&net, prefix, origin, &[*t]))
        .collect();
    group.bench_function("batch16_poisoned_1thread", |b| {
        let computer = RouteComputer::with_threads(1);
        b.iter(|| computer.compute_batch(&net, &specs));
    });
    group.bench_function("batch16_poisoned_parallel", |b| {
        let computer = RouteComputer::new();
        b.iter(|| computer.compute_batch(&net, &specs));
    });

    // The sharded shared cache on its hit path. The default layout reads a
    // published snapshot with no lock and must stay within 1.2x of the
    // single-owner cache_hit_medium above (gated hard by the
    // cache_hit_gate bench); the retained mutex-per-shard oracle is
    // measured alongside so the lock's cost stays visible.
    group.bench_function("shared_cache_hit_medium", |b| {
        let cache = lg_sim::SharedRouteCache::new();
        let _ = cache.compute(&net, &spec);
        b.iter(|| cache.compute(&net, &spec));
    });
    group.bench_function("shared_cache_hit_locked_medium", |b| {
        let cache = lg_sim::SharedRouteCache::locked();
        let _ = cache.compute(&net, &spec);
        b.iter(|| cache.compute(&net, &spec));
    });

    // Incremental invalidation: warm the poisoned what-if batch, then each
    // iteration toggles loop detection at one transit AS and recomputes a
    // spec whose footprint names it. Only footprint-hitting entries may be
    // evicted, so the rest of the batch stays warm across iterations.
    group.bench_function("dirty_invalidation_single_as", |b| {
        let mut dirty_net = Network::new(TopologyConfig::medium(1).generate());
        let mut cache = RouteTableCache::new();
        for s in &specs {
            let _ = cache.compute(&dirty_net, s);
        }
        let victim = targets[0];
        let mut lenient = false;
        b.iter(|| {
            lenient = !lenient;
            dirty_net.set_policy(
                victim,
                lg_bgp::ImportPolicy {
                    loop_detection: if lenient {
                        lg_bgp::LoopDetection::max_occurrences(1)
                    } else {
                        lg_bgp::LoopDetection::standard()
                    },
                    ..lg_bgp::ImportPolicy::standard()
                },
            );
            cache.compute(&dirty_net, &specs[0])
        });
    });
    group.finish();
}

fn bench_dataplane_walk(c: &mut Criterion) {
    let net = Network::new(TopologyConfig::medium(2).generate());
    let mut dp = DataPlane::new(&net);
    dp.ensure_infra_all();
    let src = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a))
        .unwrap();
    let dst = net
        .graph()
        .ases()
        .filter(|a| net.graph().is_stub(*a))
        .last()
        .unwrap();
    c.bench_function("dataplane_walk_medium", |b| {
        b.iter(|| dp.walk(Time::ZERO, src, infra_addr(dst)));
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let codec = Codec::default();
    let update = Message::Update(UpdateMsg {
        withdrawn: vec![],
        origin: Some(Origin::Igp),
        as_path: Some(AsPath::poisoned(AsId(100), &[AsId(3356)])),
        next_hop: Some(0x0A000001),
        med: None,
        local_pref: Some(100),
        communities: vec![(65000 << 16) | 666],
        nlri: vec![Prefix::from_octets(184, 164, 224, 0, 19)],
    });
    let bytes = codec.encode(&update).unwrap();
    c.bench_function("wire_encode_update", |b| b.iter(|| codec.encode(&update)));
    c.bench_function("wire_decode_update", |b| b.iter(|| codec.decode(&bytes)));
}

fn bench_isolation(c: &mut Criterion) {
    let net = Network::new(TopologyConfig::small(3).generate());
    let stubs: Vec<AsId> = net
        .graph()
        .ases()
        .filter(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .collect();
    let (src, dst) = (stubs[0], *stubs.last().unwrap());
    let vps = vec![stubs[1], stubs[2]];
    let mut dp = DataPlane::new(&net);
    dp.ensure_infra_all();
    let mut prober = Prober::with_defaults();
    let mut atlas = Atlas::default();
    let mut resp = ResponsivenessDb::new();
    let mut pairs = vec![(src, dst)];
    for a in net.graph().ases() {
        if a != src {
            pairs.push((src, a));
        }
    }
    let mut sched = RefreshScheduler::new(pairs, 60_000);
    sched.refresh_due(&dp, &mut prober, &mut atlas, &mut resp, Time::ZERO);
    // Reverse failure on the first transit of the reverse path.
    let rev = dp.walk(Time::ZERO, dst, infra_addr(src));
    let culprit = rev.as_hops()[1];
    dp.failures_mut()
        .add(Failure::silent_as_toward(culprit, infra_prefix(src)));

    let isolator = Isolator::new(vps);
    let mut second = 100u64;
    c.bench_function("isolate_reverse_failure", |b| {
        b.iter_batched(
            || {
                // A fresh time window per run keeps rate limits quiet.
                second += 100;
                Time::from_secs(second)
            },
            |t| isolator.isolate(&dp, &mut prober, &atlas, &resp, t, src, dst),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_route_computation,
    bench_compute_layer,
    bench_dataplane_walk,
    bench_wire_codec,
    bench_isolation
);
criterion_main!(benches);
