//! Concurrency smoke for the shared route cache: many threads hammer one
//! `SharedRouteCache` across repeated mutation generations and every lookup
//! must match a scratch computation — no stale fixed points, no torn
//! counters, no deadlocks. CI runs this with a high `LG_SMOKE_ITERS` as a
//! sanitizer-style gate; locally it defaults to a quick pass.
//!
//! (The toolchain here has no miri/loom; this test is the nightly-free
//! stand-in: real OS threads, real contention, exact oracles.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lg_asmap::TopologyConfig;
use lg_bgp::{ImportPolicy, LoopDetection, Prefix};
use lg_sim::{compute_routes, AnnouncementSpec, Network, SharedRouteCache};

fn pfx() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

fn iterations() -> u64 {
    std::env::var("LG_SMOKE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

#[test]
fn concurrent_lookups_survive_mutation_generations() {
    const THREADS: usize = 8;

    let mut net = Network::new(TopologyConfig::small(97).generate());
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .or_else(|| net.graph().ases().find(|a| net.graph().is_stub(*a)))
        .expect("topology has stubs");
    let transits = net.graph().transit_ases();

    let specs: Vec<AnnouncementSpec> = {
        let providers = net.graph().providers(origin);
        let above = net.graph().providers(providers[0]);
        let target = if above.is_empty() {
            providers[0]
        } else {
            above[0]
        };
        vec![
            AnnouncementSpec::plain(&net, pfx(), origin),
            AnnouncementSpec::prepended(&net, pfx(), origin, 3),
            AnnouncementSpec::poisoned(&net, pfx(), origin, &[target]),
        ]
    };

    let cache = Arc::new(SharedRouteCache::new());
    let lookups = AtomicU64::new(0);

    // Alternate phases: 8 threads race lookups against a warm/cold cache,
    // then the network mutates (a loop-detection toggle at a rotating
    // transit AS) and the next phase must see only post-mutation tables.
    for phase in 0..iterations() {
        let victim = transits[(phase as usize) % transits.len()];
        let lenient = phase % 2 == 0;
        net.set_policy(
            victim,
            ImportPolicy {
                loop_detection: if lenient {
                    LoopDetection::max_occurrences(1)
                } else {
                    LoopDetection::standard()
                },
                ..ImportPolicy::standard()
            },
        );

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let net = &net;
                let specs = &specs;
                let lookups = &lookups;
                s.spawn(move || {
                    // Stagger start order so shard lock contention varies.
                    for spec in specs.iter().cycle().skip(t % specs.len()).take(specs.len()) {
                        let got = cache.compute(net, spec);
                        let want = compute_routes(net, spec);
                        for a in net.graph().ases() {
                            assert_eq!(
                                got.route(a),
                                want.route(a),
                                "phase {phase}: stale route at {a}"
                            );
                        }
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }

    let total = lookups.load(Ordering::Relaxed);
    assert_eq!(total, iterations() * (THREADS * specs.len()) as u64);
    // Counter coherence: every lookup is accounted as exactly one hit or
    // one miss.
    assert_eq!(cache.hits() + cache.misses(), total);
    // Each phase's mutation forces at least the poisoned/footprint specs to
    // recompute, so misses grow with phases while hits dominate.
    assert!(cache.misses() >= specs.len() as u64);
    assert!(cache.hits() > 0);
}
