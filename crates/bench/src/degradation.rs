//! Repair-success degradation under adversarial filter deployment.
//!
//! Smith et al.'s poisoning-feasibility mechanisms — max-AS-path-length
//! caps, poisoned-announcement drops at large transit networks, and stub
//! default routes — all cut into LIFEGUARD-style repair. This module
//! reruns the §5.1 efficacy sweep (and the §5.2 collateral-disruption
//! count for the repairs that survive) at a range of *calibrated filter
//! deployment rates*, producing the degradation curve: filtering degrades
//! repair success but does not eliminate it.
//!
//! Rate 0.0 is the unfiltered world of the original benches; each higher
//! rate flips more ASes (tier-aware, deterministic per `(seed, AS,
//! mechanism)`) into the filter deployment. Reserved-ASN drops also
//! suppress paths through AS 0 — generated topologies use `AsId(0)` as a
//! real tier-1 while IANA reserves ASN 0, so the *baseline* delivery rate
//! is reported next to repair success to keep that artifact visible
//! instead of folding it into "repairs failed".

use crate::report::{pct, Table};
use crate::worlds::production_prefix;
use lg_asmap::{assign_filters, AsId, FilterDeployment, TopologyConfig};
use lg_bgp::Prefix;
use lg_locate::Blame;
use lg_sim::{compute_routes, effective_path, AnnouncementSpec, Network, SharedRouteCache};
use lifeguard_core::decide::plan_repair_cached;
use lifeguard_core::LifeguardConfig;

/// One point of the degradation curve: the repair sweep's outcome at a
/// single filter deployment rate.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegradationPoint {
    /// Calibrated deployment rate the filters were drawn at.
    pub rate: f64,
    /// ASes that ended up with at least one filter mechanism enabled.
    pub filtering_ases: usize,
    /// ASes (over all sampled origins, baseline announcement) whose
    /// data-plane chain reaches the origin *before* any failure/repair.
    pub delivered_baseline: usize,
    /// ASes evaluated for baseline delivery.
    pub baseline_total: usize,
    /// Repair cases attempted (culprit AS × affected source).
    pub attempted: usize,
    /// Cases where the planner produced a repair and the predicted fixed
    /// point confirms the source's forwarding chain avoids the culprit.
    pub repaired: usize,
    /// Planner refusals: the repair announcement was rejected by every
    /// provider's import filters (it never enters the routing system).
    pub filtered_everywhere: usize,
    /// Planner refusals: no alternate policy-compliant path exists.
    pub no_alternate: usize,
    /// Planner refusals: the source still forwards into the culprit over
    /// a default route (Smith et al.'s default-route throttling).
    pub default_leak: usize,
    /// Remaining refusals (sole provider, poison cannot stick, ...).
    pub other_refusals: usize,
    /// §5.2 collateral: next-hop changes at ASes other than the repaired
    /// source, summed over successful repairs.
    pub disturbed: usize,
}

impl DegradationPoint {
    /// Fraction of attempted repairs that succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.repaired as f64 / self.attempted as f64
        }
    }

    /// Fraction of ASes the baseline announcement reaches at all.
    pub fn baseline_delivery(&self) -> f64 {
        if self.baseline_total == 0 {
            0.0
        } else {
            self.delivered_baseline as f64 / self.baseline_total as f64
        }
    }

    /// Mean collateral route changes per successful repair.
    pub fn mean_disturbed(&self) -> f64 {
        if self.repaired == 0 {
            0.0
        } else {
            self.disturbed as f64 / self.repaired as f64
        }
    }
}

fn sentinel_prefix() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 19)
}

/// Sweep one deployment rate: build the filtered network, replay the
/// §5.1-style poison sweep through the *repair planner* (not a bare
/// what-if), and classify every outcome.
fn run_point(
    cfg: &TopologyConfig,
    rate: f64,
    n_origins: usize,
    n_sources: usize,
) -> DegradationPoint {
    let mut net = Network::new(cfg.generate());
    let deployment = FilterDeployment::calibrated(rate, cfg.seed ^ 0xF117E55);
    let fa = assign_filters(net.graph(), &deployment);
    net.apply_filter_assignment(&fa);
    let net = net;

    let mut point = DegradationPoint {
        rate,
        filtering_ases: fa.filtering_ases(),
        ..DegradationPoint::default()
    };

    let prefix = production_prefix();
    let origins: Vec<AsId> = net
        .graph()
        .ases()
        .filter(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .take(n_origins)
        .collect();
    let cache = SharedRouteCache::new();

    for origin in origins {
        // Paper baseline O-O-O, so the repair poison swaps in at equal
        // path length (§5.2).
        let base_spec = AnnouncementSpec::prepended(&net, prefix, origin, 3);
        let base = compute_routes(&net, &base_spec);
        for a in net.graph().ases() {
            if a == origin {
                continue;
            }
            point.baseline_total += 1;
            if effective_path(&net, &base, a).is_some() {
                point.delivered_baseline += 1;
            }
        }

        let mut lcfg = LifeguardConfig::paper_defaults(origin, prefix, sentinel_prefix());
        lcfg.providers = Vec::new(); // all neighbors

        let sources: Vec<AsId> = net
            .graph()
            .ases()
            .filter(|s| *s != origin && net.graph().is_stub(*s) && base.has_route(*s))
            .take(n_sources)
            .collect();
        for source in sources {
            let path = base.as_path(source).expect("source has a baseline route");
            if path.len() <= 3 {
                continue; // too short to host a transit culprit
            }
            // Transit culprits: everything between the source and the
            // origin's immediate provider (the Cogent rule: never poison
            // our own providers).
            for &culprit in &path[..path.len() - 2] {
                if culprit == source {
                    continue;
                }
                point.attempted += 1;
                match plan_repair_cached(&net, &lcfg, Blame::As(culprit), source, &cache) {
                    Ok(plan) => {
                        let table = cache.compute(&net, &plan.spec);
                        let repaired = effective_path(&net, &table, source)
                            .is_some_and(|p| !p.contains(&culprit));
                        assert!(repaired, "planner accepted an unrepaired case");
                        point.repaired += 1;
                        point.disturbed += net
                            .graph()
                            .ases()
                            .filter(|a| {
                                *a != source
                                    && *a != origin
                                    && base.next_hop(*a) != table.next_hop(*a)
                            })
                            .count();
                    }
                    Err(e) if e.contains("filtered at every provider") => {
                        point.filtered_everywhere += 1;
                    }
                    Err(e) if e.contains("no alternate") => point.no_alternate += 1,
                    Err(e) if e.contains("still forwards through") => point.default_leak += 1,
                    Err(_) => point.other_refusals += 1,
                }
            }
        }
    }
    point
}

/// The degradation curve: one [`DegradationPoint`] per deployment rate,
/// same topology seed throughout so only the filters vary.
pub fn run_degradation(
    cfg: &TopologyConfig,
    rates: &[f64],
    n_origins: usize,
    n_sources: usize,
) -> Vec<DegradationPoint> {
    rates
        .iter()
        .map(|&rate| run_point(cfg, rate, n_origins, n_sources))
        .collect()
}

/// The curve as a report table.
pub fn degradation_table(points: &[DegradationPoint]) -> Table {
    let mut t = Table::new(
        "Repair success vs filter deployment rate (Smith et al. feasibility filters)",
        &[
            "deploy rate",
            "filtering ASes",
            "baseline delivery",
            "repair success",
            "filtered@providers",
            "no alternate",
            "default leak",
            "mean disturbed",
            "cases",
        ],
    );
    for p in points {
        t.row(&[
            format!("{:.2}", p.rate),
            p.filtering_ases.to_string(),
            pct(p.baseline_delivery()),
            pct(p.success_rate()),
            p.filtered_everywhere.to_string(),
            p.no_alternate.to_string(),
            p.default_leak.to_string(),
            format!("{:.1}", p.mean_disturbed()),
            p.attempted.to_string(),
        ]);
    }
    t
}

/// The curve as a JSON artifact (CI uploads this; no serde in-tree, so the
/// rows are emitted by hand — every field is a plain number).
pub fn degradation_json(points: &[DegradationPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "  {{\"rate\": {:.2}, \"filtering_ases\": {}, \"baseline_delivery\": {:.4}, \
                 \"attempted\": {}, \"repaired\": {}, \"success_rate\": {:.4}, \
                 \"filtered_everywhere\": {}, \"no_alternate\": {}, \"default_leak\": {}, \
                 \"other_refusals\": {}, \"mean_disturbed\": {:.2}}}",
                p.rate,
                p.filtering_ases,
                p.baseline_delivery(),
                p.attempted,
                p.repaired,
                p.success_rate(),
                p.filtered_everywhere,
                p.no_alternate,
                p.default_leak,
                p.other_refusals,
                p.mean_disturbed(),
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_matches_unfiltered_efficacy_shape() {
        let points = run_degradation(&TopologyConfig::medium(9), &[0.0], 4, 8);
        let p = &points[0];
        assert_eq!(p.filtering_ases, 0, "rate 0 must deploy nothing");
        assert!(p.attempted > 30, "cases {}", p.attempted);
        assert!(
            (0.6..=1.0).contains(&p.success_rate()),
            "unfiltered success {}",
            p.success_rate()
        );
        assert!(p.baseline_delivery() > 0.95, "{}", p.baseline_delivery());
    }

    #[test]
    fn success_degrades_but_survives_under_partial_deployment() {
        // At partial deployment (the realistic regime Smith et al.
        // measure) repair is degraded but alive; at total deployment the
        // core drops every poisoned announcement and repair dies — both
        // ends of the curve are meaningful.
        let points = run_degradation(&TopologyConfig::medium(9), &[0.0, 0.5, 1.0], 4, 8);
        let (clean, half, full) = (&points[0], &points[1], &points[2]);
        assert!(half.filtering_ases > 0 && full.filtering_ases > half.filtering_ases);
        assert!(
            half.success_rate() < clean.success_rate(),
            "filters must cost something: {} vs {}",
            half.success_rate(),
            clean.success_rate()
        );
        assert!(
            half.success_rate() > 0.0,
            "the paper's point: degraded, not eliminated"
        );
        assert!(
            full.success_rate() < half.success_rate(),
            "more deployment, less repair: {} vs {}",
            full.success_rate(),
            half.success_rate()
        );
        // The planner must attribute failures, not just fail.
        assert!(
            full.filtered_everywhere > 0,
            "total core deployment must reject seeds at the providers: {full:?}"
        );
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let points = run_degradation(&TopologyConfig::small(5), &[0.0, 0.5], 2, 4);
        let json = degradation_json(&points);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches("\"rate\"").count(), 2);
        assert_eq!(json.matches("\"success_rate\"").count(), 2);
    }
}
