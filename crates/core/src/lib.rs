//! LIFEGUARD: Locating Internet Failures Effectively and Generating Usable
//! Alternate Routes Dynamically.
//!
//! The system the paper deploys (and this workspace reproduces): an edge
//! network's automatic repair loop for persistent partial outages.
//!
//! * **Monitor** (§4.1): ping monitored destinations every 30 s; four
//!   consecutive failed pairs (90 s) flag an outage.
//! * **Locate** (§4.1): run the `lg-locate` isolation pipeline against the
//!   background atlas to find the failing direction and the culprit AS or
//!   link.
//! * **Decide** (§4.2): outages that have survived detection + isolation
//!   are statistically likely to persist; predict *a priori* (by simulating
//!   the poisoned announcement over the known topology) whether alternate
//!   policy-compliant paths exist, and skip poisoning when they do not.
//! * **Repair** (§3.1): re-announce the production prefix as `O-A-O`
//!   (equal length and next hop as the steady-state `O-O-O` baseline, so
//!   unaffected routes reconverge instantly), selectively poisoning per
//!   provider when the blame is an AS link and the topology permits
//!   (§3.1.2), while a sentinel less-specific keeps captive ASes reachable
//!   and gives the system a probe path that still crosses the poisoned AS.
//! * **Unpoison** (§4.2): pings sourced from the sentinel's unused address
//!   space detect when the underlying failure heals; the baseline
//!   announcement is then restored.

pub mod config;
pub mod decide;
pub mod dns_failover;
pub mod events;
pub mod monitor;
pub mod system;
pub mod world;

pub use config::{LifeguardConfig, SentinelStrategy};
pub use decide::{plan_repair, RepairPlan};
pub use dns_failover::{routes_consistent, DnsFailover};
pub use events::{Event, EventKind};
pub use monitor::{MeshMonitor, OutageRecord};
pub use system::{Lifeguard, TargetState};
pub use world::World;
