//! Concurrency smoke for the shared route cache: many threads hammer one
//! `SharedRouteCache` across repeated mutation generations and every lookup
//! must match a scratch computation — no stale fixed points, no torn
//! counters, no deadlocks. CI runs this with a high `LG_SMOKE_ITERS` as a
//! sanitizer-style gate; locally it defaults to a quick pass.
//!
//! Both shard layouts run the same schedules: the lock-free snapshot store
//! (the default) and the retained mutex-per-shard oracle
//! (`SharedRouteCache::locked`), mirroring the `OutQueue::Reference`
//! differential pattern.
//!
//! (The toolchain here has no miri/loom; this test is the nightly-free
//! stand-in: real OS threads, real contention, exact oracles.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lg_asmap::{AsId, GraphBuilder, TopologyConfig};
use lg_bgp::{ImportPolicy, LoopDetection, Prefix};
use lg_sim::{compute_routes, AnnouncementSpec, Network, SharedRouteCache};

fn pfx() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

fn iterations() -> u64 {
    std::env::var("LG_SMOKE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn smoke_lookups_survive_mutation_generations(cache: SharedRouteCache) {
    const THREADS: usize = 8;

    let mut net = Network::new(TopologyConfig::small(97).generate());
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .or_else(|| net.graph().ases().find(|a| net.graph().is_stub(*a)))
        .expect("topology has stubs");
    let transits = net.graph().transit_ases();

    let specs: Vec<AnnouncementSpec> = {
        let providers = net.graph().providers(origin);
        let above = net.graph().providers(providers[0]);
        let target = if above.is_empty() {
            providers[0]
        } else {
            above[0]
        };
        vec![
            AnnouncementSpec::plain(&net, pfx(), origin),
            AnnouncementSpec::prepended(&net, pfx(), origin, 3),
            AnnouncementSpec::poisoned(&net, pfx(), origin, &[target]),
        ]
    };

    let cache = Arc::new(cache);
    let lookups = AtomicU64::new(0);

    // Alternate phases: 8 threads race lookups against a warm/cold cache,
    // then the network mutates (a loop-detection toggle at a rotating
    // transit AS) and the next phase must see only post-mutation tables.
    for phase in 0..iterations() {
        let victim = transits[(phase as usize) % transits.len()];
        let lenient = phase % 2 == 0;
        net.set_policy(
            victim,
            ImportPolicy {
                loop_detection: if lenient {
                    LoopDetection::max_occurrences(1)
                } else {
                    LoopDetection::standard()
                },
                ..ImportPolicy::standard()
            },
        );

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let net = &net;
                let specs = &specs;
                let lookups = &lookups;
                s.spawn(move || {
                    // Stagger start order so shard lock contention varies.
                    for spec in specs.iter().cycle().skip(t % specs.len()).take(specs.len()) {
                        let got = cache.compute(net, spec);
                        let want = compute_routes(net, spec);
                        for a in net.graph().ases() {
                            assert_eq!(
                                got.route(a),
                                want.route(a),
                                "phase {phase}: stale route at {a}"
                            );
                        }
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }

    let total = lookups.load(Ordering::Relaxed);
    assert_eq!(total, iterations() * (THREADS * specs.len()) as u64);
    // Counter coherence: every lookup is accounted as exactly one hit or
    // one miss.
    assert_eq!(cache.hits() + cache.misses(), total);
    // Each phase's mutation forces at least the poisoned/footprint specs to
    // recompute, so misses grow with phases while hits dominate.
    assert!(cache.misses() >= specs.len() as u64);
    assert!(cache.hits() > 0);
}

#[test]
fn concurrent_lookups_survive_mutation_generations() {
    let cache = SharedRouteCache::new();
    assert!(cache.is_lock_free());
    smoke_lookups_survive_mutation_generations(cache);
}

#[test]
fn concurrent_lookups_survive_mutation_generations_locked_oracle() {
    let cache = SharedRouteCache::locked();
    assert!(!cache.is_lock_free());
    smoke_lookups_survive_mutation_generations(cache);
}

/// Snapshot-path stress with *exact* accounting: after every mutation, 8
/// threads race all 16 poison specs — the first access per shard replays
/// the invalidation under the writer lock and republishes while the other
/// threads read the published snapshot with no lock. Two properties are
/// pinned:
///
/// * **no torn reads** — every returned table equals a scratch fixed
///   point of the current configuration, route for route;
/// * **compute-once per generation** — each phase evicts exactly one entry
///   (the poison whose footprint names the victim) and recomputes exactly
///   once, no matter how many threads race the miss: the in-flight marker
///   makes the recount deterministic.
#[test]
fn snapshot_readers_see_no_torn_state_and_compute_once() {
    const THREADS: usize = 8;
    const MIDDLES: u32 = 16;

    // Star: origin 0 below middles 1..=16, all under top AS 17. The poison
    // naming middle M is the only entry whose footprint contains M.
    let mut g = GraphBuilder::with_ases(18);
    for i in 1..=MIDDLES {
        g.provider_customer(AsId(i), AsId(0));
        g.provider_customer(AsId(17), AsId(i));
    }
    let mut net = Network::new(g.build());
    let specs: Vec<AnnouncementSpec> = (1..=MIDDLES)
        .map(|t| AnnouncementSpec::poisoned(&net, pfx(), AsId(0), &[AsId(t)]))
        .collect();

    let cache = Arc::new(SharedRouteCache::new());
    assert!(cache.is_lock_free());
    for spec in &specs {
        cache.compute(&net, spec);
    }
    assert_eq!(cache.misses(), MIDDLES as u64, "cold fill is all misses");

    let phases = iterations().max(4);
    for phase in 0..phases {
        let victim = AsId((phase % MIDDLES as u64) as u32 + 1);
        // Alternate per full sweep, not per phase: each touch of an AS
        // must differ from its previous policy or the write records
        // `DirtyScope::Unchanged` and evicts nothing.
        let lenient = (phase / MIDDLES as u64).is_multiple_of(2);
        net.set_policy(
            victim,
            ImportPolicy {
                loop_detection: if lenient {
                    LoopDetection::max_occurrences(1)
                } else {
                    LoopDetection::standard()
                },
                ..ImportPolicy::standard()
            },
        );

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let net = &net;
                let specs = &specs;
                s.spawn(move || {
                    for spec in specs.iter().cycle().skip(t).take(specs.len()) {
                        let got = cache.compute(net, spec);
                        let want = compute_routes(net, spec);
                        for a in net.graph().ases() {
                            assert_eq!(
                                got.route(a),
                                want.route(a),
                                "phase {phase}: torn/stale route at {a}"
                            );
                        }
                    }
                });
            }
        });

        // The loop-detection toggle at middle M is footprint-scoped: it
        // evicts exactly the M-poison, and the in-flight marker lets
        // exactly one of the 8 racing threads recompute it.
        assert_eq!(
            cache.misses(),
            MIDDLES as u64 + phase + 1,
            "phase {phase}: compute-once violated"
        );
    }

    let stats = cache.stats();
    assert_eq!(stats.evictions.footprint, phases, "one eviction per phase");
    assert_eq!(stats.evictions.total(), phases, "no other scope fired");
    assert_eq!(stats.entries, MIDDLES as usize, "every eviction refilled");
    assert_eq!(
        stats.hits + stats.misses,
        MIDDLES as u64 + phases * (THREADS as u64 * MIDDLES as u64),
        "every lookup accounted exactly once"
    );
}
