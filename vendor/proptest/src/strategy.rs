//! Strategies: value generators for property tests.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): plenty for the properties in this tree.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// A fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
