//! Hubble-style mesh monitoring (the trigger system LIFEGUARD builds on).
//!
//! The deployment watches many destinations from many vantage points and
//! feeds isolation only with outages worth acting on. This module
//! implements that front end: per-(vantage, target) ping-pair streaks, an
//! outage ledger, and the §5.3 candidacy criteria —
//!
//! 1. multiple sources must be unable to reach the destination, and those
//!    sources must still reach at least 10% of all destinations (ruling out
//!    source-local problems);
//! 2. the outage must be *partial*: some vantage point still reaches the
//!    destination (suggesting alternate AS paths exist);
//! 3. the problem must persist through the isolation stage (transients are
//!    excluded by the streak threshold and re-checks).

use crate::world::World;
use lg_asmap::AsId;
use lg_sim::dataplane::infra_addr;
use lg_sim::Time;
use lg_telemetry::{Counter, Registry};
use std::collections::HashMap;

/// Registry handles for the outage ledger (`monitor.*` metrics), one bump
/// per ledger transition in [`MeshMonitor::tick`].
struct MonitorTelemetry {
    /// New outage record opened (first vantage streak crossed the
    /// threshold).
    outages_opened: Counter,
    /// An open record's affected-vantage set changed (e.g. became partial
    /// or spread to more vantage points).
    outages_transitioned: Counter,
    /// Record closed into history (connectivity returned everywhere).
    outages_closed: Counter,
}

impl MonitorTelemetry {
    fn from_registry(r: &Registry) -> Self {
        MonitorTelemetry {
            outages_opened: r.counter("monitor.outages_opened"),
            outages_transitioned: r.counter("monitor.outages_transitioned"),
            outages_closed: r.counter("monitor.outages_closed"),
        }
    }
}

impl Default for MonitorTelemetry {
    fn default() -> Self {
        Self::from_registry(lg_telemetry::global())
    }
}

/// One entry in the outage ledger.
#[derive(Clone, Debug)]
pub struct OutageRecord {
    /// The unreachable destination.
    pub target: AsId,
    /// When the first vantage point's streak crossed the threshold.
    pub started: Time,
    /// When connectivity returned everywhere (None while ongoing).
    pub ended: Option<Time>,
    /// Vantage points currently unable to reach the target.
    pub affected_vps: Vec<AsId>,
    /// Vantage points that still reach the target (partial-outage
    /// witnesses).
    pub reachable_vps: Vec<AsId>,
}

impl OutageRecord {
    /// Is the outage partial (criterion 2)?
    pub fn is_partial(&self) -> bool {
        !self.reachable_vps.is_empty()
    }

    /// Duration so far (or total when ended), given `now`.
    pub fn duration_ms(&self, now: Time) -> u64 {
        self.ended.unwrap_or(now) - self.started
    }
}

/// Multi-vantage monitoring mesh.
pub struct MeshMonitor {
    /// Vantage points issuing ping pairs.
    pub vantage_points: Vec<AsId>,
    /// Monitored destinations.
    pub targets: Vec<AsId>,
    /// Consecutive failed pairs before a (vp, target) is "down" (paper: 4).
    pub streak_threshold: u32,
    streaks: HashMap<(AsId, AsId), u32>,
    down: HashMap<(AsId, AsId), Time>,
    /// Ongoing outages by target.
    active: HashMap<AsId, OutageRecord>,
    /// Finished outages.
    pub history: Vec<OutageRecord>,
    tele: MonitorTelemetry,
}

impl MeshMonitor {
    /// New mesh with the paper's 4-pair threshold.
    pub fn new(vantage_points: Vec<AsId>, targets: Vec<AsId>) -> Self {
        MeshMonitor {
            vantage_points,
            targets,
            streak_threshold: 4,
            streaks: HashMap::new(),
            down: HashMap::new(),
            active: HashMap::new(),
            history: Vec::new(),
            tele: MonitorTelemetry::default(),
        }
    }

    /// Like [`MeshMonitor::new`], but reporting `monitor.*` metrics into
    /// `registry` instead of the process-global one.
    pub fn with_registry(
        vantage_points: Vec<AsId>,
        targets: Vec<AsId>,
        registry: &Registry,
    ) -> Self {
        let mut m = Self::new(vantage_points, targets);
        m.tele = MonitorTelemetry::from_registry(registry);
        m
    }

    /// One monitoring round: ping pairs from every vantage point to every
    /// target; update the ledger. Returns targets whose outage records
    /// changed state this round (started, became partial, or ended).
    pub fn tick(&mut self, world: &mut World<'_>, now: Time) -> Vec<AsId> {
        let mut changed = Vec::new();
        // Refresh per-pair state.
        for &vp in &self.vantage_points.clone() {
            for &t in &self.targets.clone() {
                let ok = {
                    let a = world.prober.ping(&world.dp, now, vp, infra_addr(t));
                    let b = world.prober.ping(&world.dp, now, vp, infra_addr(t));
                    a.responded || b.responded
                };
                let key = (vp, t);
                if ok {
                    self.streaks.insert(key, 0);
                    self.down.remove(&key);
                } else {
                    let s = self.streaks.entry(key).or_insert(0);
                    *s += 1;
                    if *s >= self.streak_threshold {
                        self.down.entry(key).or_insert(now);
                    }
                }
            }
        }
        // Roll per-pair state into per-target outage records.
        for &t in &self.targets.clone() {
            let affected: Vec<AsId> = self
                .vantage_points
                .iter()
                .copied()
                .filter(|vp| self.down.contains_key(&(*vp, t)))
                .collect();
            let reachable: Vec<AsId> = self
                .vantage_points
                .iter()
                .copied()
                .filter(|vp| !affected.contains(vp))
                .collect();
            match (self.active.get_mut(&t), affected.is_empty()) {
                (None, false) => {
                    let started = affected
                        .iter()
                        .filter_map(|vp| self.down.get(&(*vp, t)).copied())
                        .min()
                        .unwrap_or(now);
                    self.active.insert(
                        t,
                        OutageRecord {
                            target: t,
                            started,
                            ended: None,
                            affected_vps: affected,
                            reachable_vps: reachable,
                        },
                    );
                    self.tele.outages_opened.inc();
                    lg_telemetry::trace::instant_value("monitor.outage_opened", now.millis());
                    changed.push(t);
                }
                (Some(rec), false) => {
                    if rec.affected_vps != affected {
                        rec.affected_vps = affected;
                        rec.reachable_vps = reachable;
                        self.tele.outages_transitioned.inc();
                        lg_telemetry::trace::instant_value(
                            "monitor.outage_transitioned",
                            now.millis(),
                        );
                        changed.push(t);
                    }
                }
                (Some(_), true) => {
                    let mut rec = self.active.remove(&t).unwrap();
                    rec.ended = Some(now);
                    self.history.push(rec);
                    self.tele.outages_closed.inc();
                    lg_telemetry::trace::instant_value("monitor.outage_closed", now.millis());
                    changed.push(t);
                }
                (None, true) => {}
            }
        }
        changed
    }

    /// The ongoing outage for `target`, if any.
    pub fn active_outage(&self, target: AsId) -> Option<&OutageRecord> {
        self.active.get(&target)
    }

    /// §5.3 candidacy: the outage to `target` qualifies for isolation and
    /// repair. `now` is used to validate that affected vantage points still
    /// reach a healthy share of the other targets.
    pub fn is_repair_candidate(&self, world: &mut World<'_>, now: Time, target: AsId) -> bool {
        let Some(rec) = self.active.get(&target) else {
            return false;
        };
        // (1) multiple sources affected...
        if rec.affected_vps.len() < 2 {
            return false;
        }
        // ...that still reach >= 10% of all destinations.
        let healthy_sources = rec.affected_vps.iter().all(|vp| {
            let reached = self
                .targets
                .iter()
                .filter(|t| {
                    **t != target
                        && world
                            .prober
                            .ping(&world.dp, now, *vp, infra_addr(**t))
                            .responded
                })
                .count();
            reached * 10 >= self.targets.len().saturating_sub(1)
        });
        if !healthy_sources {
            return false;
        }
        // (2) partial outage.
        rec.is_partial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_asmap::GraphBuilder;

    use lg_sim::dataplane::infra_prefix;
    use lg_sim::failures::Failure;
    use lg_sim::Network;

    /// Two vantage stubs (5, 6) under distinct transits (1, 2); targets
    /// (7, 8) under transits (3, 4); core 0 connects all transits.
    fn net() -> Network {
        let mut g = GraphBuilder::with_ases(9);
        for transit in 1..=4u32 {
            g.provider_customer(AsId(0), AsId(transit));
        }
        g.provider_customer(AsId(1), AsId(5));
        g.provider_customer(AsId(2), AsId(6));
        g.provider_customer(AsId(3), AsId(7));
        g.provider_customer(AsId(4), AsId(8));
        // Extra path: vantage 6 also buys from transit 3 (so a failure in
        // core 0 leaves 6 -> 3 -> 7 working: partial outages possible).
        g.provider_customer(AsId(3), AsId(6));
        Network::new(g.build())
    }

    fn mesh() -> MeshMonitor {
        MeshMonitor::new(vec![AsId(5), AsId(6)], vec![AsId(7), AsId(8)])
    }

    fn run_rounds(m: &mut MeshMonitor, world: &mut World<'_>, from_min: u64, rounds: u64) -> Time {
        let mut now = Time::from_mins(from_min);
        for _ in 0..rounds {
            m.tick(world, now);
            now += 30_000;
        }
        now
    }

    #[test]
    fn healthy_mesh_records_nothing() {
        let n = net();
        let mut world = World::new(&n);
        let mut m = mesh();
        run_rounds(&mut m, &mut world, 1, 10);
        assert!(m.active_outage(AsId(7)).is_none());
        assert!(m.history.is_empty());
    }

    #[test]
    fn partial_outage_detected_and_closed() {
        let n = net();
        let mut world = World::new(&n);
        let mut m = mesh();
        run_rounds(&mut m, &mut world, 1, 4);
        // Fail transit 1 toward target 7's prefix, scoped to vantage 5's
        // ingress so only 5's flow dies: vantage 6 keeps reaching 7 (via
        // transit 3) -> a partial outage.
        let start = Time::from_mins(10);
        let end = Time::from_mins(30);
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(1), infra_prefix(AsId(7)))
                .ingress_from(AsId(5))
                .window(start, Some(end)),
        );
        run_rounds(&mut m, &mut world, 10, 8);
        let rec = m.active_outage(AsId(7)).expect("outage recorded");
        assert_eq!(rec.affected_vps, vec![AsId(5)]);
        assert_eq!(rec.reachable_vps, vec![AsId(6)]);
        assert!(rec.is_partial());
        // After the heal the record closes into history.
        run_rounds(&mut m, &mut world, 31, 4);
        assert!(m.active_outage(AsId(7)).is_none());
        assert_eq!(m.history.len(), 1);
        let closed = &m.history[0];
        assert!(closed.ended.is_some());
        assert!(closed.duration_ms(Time::from_mins(40)) >= 10 * 60_000);
    }

    #[test]
    fn repair_candidacy_requires_multiple_healthy_sources_and_partiality() {
        let n = net();
        let mut world = World::new(&n);
        let mut m = mesh();
        run_rounds(&mut m, &mut world, 1, 4);
        // Single affected VP: not a candidate.
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(1), infra_prefix(AsId(7)))
                .window(Time::from_mins(10), None),
        );
        let now = run_rounds(&mut m, &mut world, 10, 6);
        assert!(m.active_outage(AsId(7)).is_some());
        assert!(!m.is_repair_candidate(&mut world, now, AsId(7)));

        // Both VPs affected but outage partial? Fail transit 3's ingress
        // path too so VP6 also loses 7... that would make it total. Use a
        // second scoped failure that hits 6's flow only via transit 3.
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(3), infra_prefix(AsId(7)))
                .ingress_from(AsId(6))
                .window(Time::from_mins(15), None),
        );
        let now = run_rounds(&mut m, &mut world, 15, 6);
        let rec = m.active_outage(AsId(7)).unwrap();
        assert_eq!(rec.affected_vps.len(), 2);
        // Not partial anymore (no VP reaches 7): still not a candidate.
        assert!(!m.is_repair_candidate(&mut world, now, AsId(7)));
    }

    #[test]
    fn ledger_transitions_report_into_scoped_registry() {
        // The partial-outage arc (open -> close) bumps the monitor.*
        // transition counters exactly once each.
        let n = net();
        let mut world = World::new(&n);
        let reg = lg_telemetry::Registry::new();
        let mut m =
            MeshMonitor::with_registry(vec![AsId(5), AsId(6)], vec![AsId(7), AsId(8)], &reg);
        run_rounds(&mut m, &mut world, 1, 4);
        let start = Time::from_mins(10);
        let end = Time::from_mins(30);
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(1), infra_prefix(AsId(7)))
                .ingress_from(AsId(5))
                .window(start, Some(end)),
        );
        run_rounds(&mut m, &mut world, 10, 8);
        run_rounds(&mut m, &mut world, 31, 4);
        assert_eq!(m.history.len(), 1);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("monitor.outages_opened"), Some(1));
        assert_eq!(snap.counter("monitor.outages_closed"), Some(1));
        assert_eq!(snap.counter("monitor.outages_transitioned"), Some(0));
    }

    #[test]
    fn candidate_when_two_affected_and_third_reaches() {
        // Add a third vantage with an unaffected path to make the outage
        // partial while two VPs are down.
        let mut g = GraphBuilder::with_ases(10);
        for transit in 1..=4u32 {
            g.provider_customer(AsId(0), AsId(transit));
        }
        g.provider_customer(AsId(1), AsId(5));
        g.provider_customer(AsId(2), AsId(6));
        g.provider_customer(AsId(3), AsId(7));
        g.provider_customer(AsId(4), AsId(8));
        g.provider_customer(AsId(3), AsId(9)); // third VP, directly under 3
        let n = Network::new(g.build());
        let mut world = World::new(&n);
        let mut m = MeshMonitor::new(vec![AsId(5), AsId(6), AsId(9)], vec![AsId(7), AsId(8)]);
        run_rounds(&mut m, &mut world, 1, 4);
        // Core 0 fails toward 7: VPs 5 and 6 (both route via core) lose 7;
        // VP 9 (under transit 3 directly) keeps it.
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(0), infra_prefix(AsId(7)))
                .window(Time::from_mins(10), None),
        );
        let now = run_rounds(&mut m, &mut world, 10, 6);
        let rec = m.active_outage(AsId(7)).expect("outage");
        assert!(rec.affected_vps.len() >= 2, "{rec:?}");
        assert!(rec.is_partial(), "{rec:?}");
        assert!(m.is_repair_candidate(&mut world, now, AsId(7)));
    }
}
