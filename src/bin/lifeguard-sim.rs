//! `lifeguard-sim` — run a declarative LIFEGUARD scenario.
//!
//! ```sh
//! cargo run --bin lifeguard-sim -- scenarios/reverse_outage.json
//! cargo run --bin lifeguard-sim -- scenarios/reverse_outage.json --json
//! ```
//!
//! Scenario format: see `src/scenario.rs` and the `scenarios/` directory.

use lifeguard_repro::scenario;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, as_json) = match args.as_slice() {
        [p] => (p.clone(), false),
        [p, flag] if flag == "--json" => (p.clone(), true),
        _ => {
            eprintln!("usage: lifeguard-sim <scenario.json> [--json]");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let sc = match scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    let out = match scenario::run(&sc) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };

    if as_json {
        // Event log as structured JSON lines.
        use lifeguard_repro::json::Value;
        for e in &out.events {
            let line = Value::Obj(vec![
                ("at_ms".into(), Value::Num(e.at.millis() as f64)),
                ("event".into(), Value::Str(format!("{:?}", e.kind))),
            ]);
            println!("{line}");
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "origin {} monitoring {:?}",
        out.origin,
        out.targets
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );
    println!("\nevent log:");
    for line in out.log_lines() {
        println!("  {line}");
    }
    println!("\nground-truth downtime (30 s resolution):");
    for (t, d) in &out.downtime_ms {
        println!("  {t}: {:.1} min", *d as f64 / 60_000.0);
    }
    ExitCode::SUCCESS
}
