//! Tier-aware filter-policy deployment over a generated topology.
//!
//! Smith et al.'s Internet-scale poisoning study found three deployed
//! mechanisms that throttle BGP poisoning in the wild: max-AS-path-length
//! caps, poisoned-announcement filters at large transit networks, and
//! default routes at the edge. This module assigns those behaviors to the
//! ASes of a graph the way they are deployed on the real Internet — path
//! filters at transit tiers, poison/reserved-ASN drops concentrated at the
//! tier-1/tier-2 core, defaults at stubs — deterministically from a seed so
//! every experiment is replayable.
//!
//! `lg-asmap` knows nothing about BGP import machinery; this module only
//! *describes* the deployment ([`FilterAssignment`]). `lg-sim::Network`
//! translates the description into per-AS `ImportPolicy` values.

use crate::graph::AsGraph;
use crate::ids::AsId;

/// Deployment rates for the Smith et al. filter mechanisms. Each rate is
/// the fraction of *eligible* ASes (by tier) applying the mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterDeployment {
    /// Fraction of transit ASes (tiers 1–3) enforcing a path-length cap.
    pub path_len_rate: f64,
    /// The cap those ASes enforce (hops, prepends included).
    pub max_path_len: u8,
    /// Fraction of core ASes (tiers 1–2) dropping poisoned announcements
    /// (non-adjacent repeated ASNs).
    pub poison_drop_rate: f64,
    /// Fraction of core ASes (tiers 1–2) dropping paths with reserved ASNs.
    pub reserved_drop_rate: f64,
    /// Fraction of stub ASes pointing a default route at a provider.
    pub default_route_rate: f64,
    /// Seed for the per-AS deployment draw.
    pub seed: u64,
}

impl FilterDeployment {
    /// No filters anywhere — must be indistinguishable from a network that
    /// never had a filter layer.
    pub fn none() -> Self {
        FilterDeployment {
            path_len_rate: 0.0,
            max_path_len: u8::MAX,
            poison_drop_rate: 0.0,
            reserved_drop_rate: 0.0,
            default_route_rate: 0.0,
            seed: 0,
        }
    }

    /// Uniform deployment of every mechanism at `rate`, with the cap set
    /// low enough that poison+prepend announcements (but few organic paths)
    /// exceed it on the generated topologies.
    pub fn calibrated(rate: f64, seed: u64) -> Self {
        FilterDeployment {
            path_len_rate: rate,
            max_path_len: 6,
            poison_drop_rate: rate,
            reserved_drop_rate: rate,
            default_route_rate: rate,
            seed,
        }
    }

    /// Path-length caps only.
    pub fn path_len_only(rate: f64, cap: u8, seed: u64) -> Self {
        FilterDeployment {
            path_len_rate: rate,
            max_path_len: cap,
            ..Self::none_with_seed(seed)
        }
    }

    /// Poison drops at the core only.
    pub fn poison_drop_only(rate: f64, seed: u64) -> Self {
        FilterDeployment {
            poison_drop_rate: rate,
            ..Self::none_with_seed(seed)
        }
    }

    fn none_with_seed(seed: u64) -> Self {
        FilterDeployment {
            seed,
            ..Self::none()
        }
    }
}

/// The concrete per-AS outcome of a deployment draw, indexed by `AsId`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FilterAssignment {
    /// Per-AS path-length cap (`None` = no cap).
    pub max_path_len: Vec<Option<u8>>,
    /// Per-AS poisoned-announcement drop.
    pub drop_poisoned: Vec<bool>,
    /// Per-AS reserved-ASN drop.
    pub drop_reserved_asn: Vec<bool>,
    /// Per-AS default-route flag.
    pub default_route: Vec<bool>,
}

impl FilterAssignment {
    /// An assignment with every filter off (identity deployment).
    pub fn none(n: usize) -> Self {
        FilterAssignment {
            max_path_len: vec![None; n],
            drop_poisoned: vec![false; n],
            drop_reserved_asn: vec![false; n],
            default_route: vec![false; n],
        }
    }

    /// Does this assignment enable any filter anywhere?
    pub fn is_zero(&self) -> bool {
        self.max_path_len.iter().all(Option::is_none)
            && !self.drop_poisoned.iter().any(|b| *b)
            && !self.drop_reserved_asn.iter().any(|b| *b)
            && !self.default_route.iter().any(|b| *b)
    }

    /// Number of ASes with at least one import filter enabled.
    pub fn filtering_ases(&self) -> usize {
        (0..self.max_path_len.len())
            .filter(|&i| {
                self.max_path_len[i].is_some() || self.drop_poisoned[i] || self.drop_reserved_asn[i]
            })
            .count()
    }
}

/// splitmix64 — the deterministic per-AS coin.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One coin flip with probability `rate`, keyed by (seed, AS, mechanism).
fn flip(seed: u64, a: AsId, mechanism: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let x = mix(seed ^ mechanism.wrapping_mul(0xA076_1D64_78BD_642F) ^ (a.0 as u64) << 1);
    ((x >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Draw a tier-aware deployment over `graph`:
///
/// * path-length caps at transit ASes (tiers 1–3),
/// * poison / reserved-ASN drops at the core (tiers 1–2),
/// * default routes at stubs that have a provider.
///
/// The draw is a pure function of `(graph tiers, deployment)` — the same
/// seed always deploys the same filters at the same ASes.
pub fn assign_filters(graph: &AsGraph, d: &FilterDeployment) -> FilterAssignment {
    let n = graph.len();
    let mut fa = FilterAssignment::none(n);
    for a in graph.ases() {
        let i = a.0 as usize;
        let tier = graph.tier(a);
        if (1..=3).contains(&tier) && flip(d.seed, a, 1, d.path_len_rate) {
            fa.max_path_len[i] = Some(d.max_path_len);
        }
        if (1..=2).contains(&tier) {
            fa.drop_poisoned[i] = flip(d.seed, a, 2, d.poison_drop_rate);
            fa.drop_reserved_asn[i] = flip(d.seed, a, 3, d.reserved_drop_rate);
        }
        if graph.is_stub(a)
            && !graph.providers(a).is_empty()
            && flip(d.seed, a, 4, d.default_route_rate)
        {
            fa.default_route[i] = true;
        }
    }
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TopologyConfig;

    #[test]
    fn zero_deployment_is_identity() {
        let g = TopologyConfig::small(3).generate();
        let fa = assign_filters(&g, &FilterDeployment::none());
        assert!(fa.is_zero());
        assert_eq!(fa, FilterAssignment::none(g.len()));
    }

    #[test]
    fn assignment_is_deterministic() {
        let g = TopologyConfig::small(3).generate();
        let d = FilterDeployment::calibrated(0.5, 99);
        assert_eq!(assign_filters(&g, &d), assign_filters(&g, &d));
        let d2 = FilterDeployment::calibrated(0.5, 100);
        assert_ne!(assign_filters(&g, &d), assign_filters(&g, &d2));
    }

    #[test]
    fn assignment_respects_tiers() {
        let g = TopologyConfig::small(5).generate();
        let fa = assign_filters(&g, &FilterDeployment::calibrated(1.0, 7));
        for a in g.ases() {
            let i = a.0 as usize;
            let tier = g.tier(a);
            // Poison/reserved drops only at the core.
            if tier > 2 {
                assert!(!fa.drop_poisoned[i] && !fa.drop_reserved_asn[i]);
            } else {
                assert!(fa.drop_poisoned[i] && fa.drop_reserved_asn[i]);
            }
            // Caps only at transit tiers.
            assert_eq!(fa.max_path_len[i].is_some(), (1..=3).contains(&tier));
            // Defaults only at stubs with a provider.
            if fa.default_route[i] {
                assert!(g.is_stub(a) && !g.providers(a).is_empty());
            }
        }
        assert!(fa.filtering_ases() > 0);
    }

    #[test]
    fn rates_scale_the_deployment() {
        let g = TopologyConfig::medium(11).generate();
        let low = assign_filters(&g, &FilterDeployment::calibrated(0.1, 5));
        let high = assign_filters(&g, &FilterDeployment::calibrated(0.9, 5));
        assert!(low.filtering_ases() < high.filtering_ases());
        let full = assign_filters(&g, &FilterDeployment::calibrated(1.0, 5));
        let eligible = g.ases().filter(|a| (1..=3).contains(&g.tier(*a))).count();
        assert_eq!(full.filtering_ases(), eligible);
    }
}
