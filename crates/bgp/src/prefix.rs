//! IPv4 CIDR prefixes with longest-prefix-match semantics.

use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
///
/// The host bits of `addr` are always zero (enforced at construction), so
/// prefixes compare by value. LIFEGUARD's sentinel mechanism relies on
/// longest-prefix match: the production prefix is a more-specific inside the
/// sentinel less-specific, and ASes that lose the poisoned more-specific fall
/// back to the covering sentinel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Build a prefix; host bits of `addr` below `len` are masked off.
    ///
    /// # Panics
    /// Panics when `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Build from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Self::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address.
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// Prefix length in bits.
    ///
    /// (`is_empty` intentionally does not exist: a prefix length of zero is
    /// the default route, not an "empty" prefix.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for the default route `0.0.0.0/0`.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// True when `other` is equal to or more specific than this prefix.
    pub fn covers(self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// An address guaranteed to lie inside the prefix (the network address).
    pub fn an_addr(self) -> u32 {
        self.addr
    }

    /// The `i`-th address inside the prefix, wrapping within its size.
    pub fn nth_addr(self, i: u32) -> u32 {
        if self.len == 32 {
            return self.addr;
        }
        let size = 1u64 << (32 - self.len);
        self.addr + (i as u64 % size) as u32
    }

    /// Longest-prefix match: the most specific prefix in `candidates` that
    /// contains `addr`.
    pub fn lpm<'a, I>(addr: u32, candidates: I) -> Option<Prefix>
    where
        I: IntoIterator<Item = &'a Prefix>,
    {
        candidates
            .into_iter()
            .filter(|p| p.contains(addr))
            .max_by_key(|p| p.len)
            .copied()
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.addr.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}/{}", self.len)
    }
}

/// Error from parsing a prefix string.
#[derive(Debug, PartialEq, Eq)]
pub struct ParsePrefixError(pub String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError(s.to_string());
        let (ip, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in ip.split('.') {
            if n == 4 {
                return Err(err());
            }
            octets[n] = part.parse().map_err(|_| err())?;
            n += 1;
        }
        if n != 4 {
            return Err(err());
        }
        Ok(Prefix::new(u32::from_be_bytes(octets), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn host_bits_masked() {
        let p = Prefix::from_octets(10, 0, 0, 255, 24);
        assert_eq!(p, Prefix::from_octets(10, 0, 0, 0, 24));
        assert_eq!(p.to_string(), "10.0.0.0/24");
    }

    #[test]
    fn containment() {
        let p = Prefix::from_octets(10, 1, 0, 0, 16);
        assert!(p.contains(u32::from_be_bytes([10, 1, 200, 3])));
        assert!(!p.contains(u32::from_be_bytes([10, 2, 0, 0])));
    }

    #[test]
    fn covers_requires_more_specific() {
        let sentinel = Prefix::from_octets(10, 1, 0, 0, 16);
        let production = Prefix::from_octets(10, 1, 0, 0, 17);
        assert!(sentinel.covers(production));
        assert!(!production.covers(sentinel));
        assert!(sentinel.covers(sentinel));
    }

    #[test]
    fn default_route() {
        let d = Prefix::new(0, 0);
        assert!(d.is_default());
        assert!(d.contains(u32::MAX));
        assert!(d.covers(Prefix::from_octets(1, 2, 3, 4, 32)));
    }

    #[test]
    fn lpm_picks_most_specific() {
        let sentinel = Prefix::from_octets(10, 1, 0, 0, 16);
        let production = Prefix::from_octets(10, 1, 0, 0, 17);
        let other = Prefix::from_octets(192, 168, 0, 0, 16);
        let addr = u32::from_be_bytes([10, 1, 1, 1]);
        assert_eq!(
            Prefix::lpm(addr, [&sentinel, &production, &other]),
            Some(production)
        );
        // Address in the sentinel but outside the production /17.
        let high = u32::from_be_bytes([10, 1, 200, 1]);
        assert_eq!(Prefix::lpm(high, [&sentinel, &production]), Some(sentinel));
        assert_eq!(
            Prefix::lpm(u32::from_be_bytes([1, 1, 1, 1]), [&sentinel]),
            None
        );
    }

    #[test]
    fn parse_roundtrip() {
        let p: Prefix = "192.168.4.0/22".parse().unwrap();
        assert_eq!(p, Prefix::from_octets(192, 168, 4, 0, 22));
        assert!("192.168.4.0".parse::<Prefix>().is_err());
        assert!("192.168.4.0/33".parse::<Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Prefix>().is_err());
        assert!("1.2.3/8".parse::<Prefix>().is_err());
        assert!("1.2.3.4.5/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn nth_addr_stays_inside() {
        let p = Prefix::from_octets(10, 0, 0, 0, 30);
        for i in 0..10 {
            assert!(p.contains(p.nth_addr(i)));
        }
        let host = Prefix::from_octets(10, 0, 0, 7, 32);
        assert_eq!(host.nth_addr(5), host.addr());
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(addr: u32, len in 0u8..=32) {
            let p = Prefix::new(addr, len);
            let back: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_contains_own_network(addr: u32, len in 0u8..=32) {
            let p = Prefix::new(addr, len);
            prop_assert!(p.contains(p.addr()));
            prop_assert!(p.covers(p));
        }

        #[test]
        fn prop_cover_is_transitive(addr: u32, l1 in 0u8..=30) {
            let outer = Prefix::new(addr, l1);
            let mid = Prefix::new(addr, l1 + 1);
            let inner = Prefix::new(addr, l1 + 2);
            prop_assert!(outer.covers(mid));
            prop_assert!(mid.covers(inner));
            prop_assert!(outer.covers(inner));
        }
    }
}
