//! Repair planning: whether and how to poison (§4.2, §3.1).
//!
//! Given an isolation blame, the planner produces the announcement that
//! implements `AVOID_PROBLEM(X, P)`:
//!
//! * it predicts *a priori* — by computing the post-poison routing fixed
//!   point over the known topology, the same simulation methodology the
//!   paper validates at 92.5% agreement against live poisonings — whether
//!   the monitored target would retain a route, and refuses to poison when
//!   no alternate policy-compliant path exists;
//! * it discovers leniently configured ASes (§7.1: accept one occurrence of
//!   their own ASN) by checking whether a single poison actually removes
//!   the AS's route in the predicted fixed point, and doubles the poison
//!   when needed;
//! * for link blames it searches for a *selective* poisoning (§3.1.2):
//!   poison via a subset of providers so the blamed AS sheds only the
//!   failing link while keeping a working route.

use crate::config::LifeguardConfig;
use lg_asmap::AsId;
use lg_locate::Blame;
use lg_sim::{AnnouncementSpec, Network, SharedRouteCache};

/// A concrete repair: the announcement to make and what it should achieve.
#[derive(Clone, Debug)]
pub struct RepairPlan {
    /// The new production announcement.
    pub spec: AnnouncementSpec,
    /// The AS inserted into the path.
    pub poisoned: AsId,
    /// Number of copies of the poisoned AS (2 for lenient loop detection).
    pub poison_copies: usize,
    /// Whether the poison is selective (differs per provider).
    pub selective: bool,
}

fn providers_of(net: &Network, cfg: &LifeguardConfig) -> Vec<AsId> {
    if cfg.providers.is_empty() {
        net.graph()
            .neighbors(cfg.origin)
            .iter()
            .map(|(n, _)| *n)
            .collect()
    } else {
        cfg.providers.clone()
    }
}

/// Plan a repair for `target` given `blame`. Returns `Err(reason)` when
/// poisoning should not be attempted.
pub fn plan_repair(
    net: &Network,
    cfg: &LifeguardConfig,
    blame: Blame,
    target: AsId,
) -> Result<RepairPlan, String> {
    plan_repair_cached(net, cfg, blame, target, &SharedRouteCache::new())
}

/// [`plan_repair`] against a shared table cache: the running system plans
/// repeatedly over one (unchanging) network, so the predicted fixed points
/// — often the same specs across outages and ticks — memoize well, and the
/// sharded cache lets concurrent systems on one topology share them.
pub fn plan_repair_cached(
    net: &Network,
    cfg: &LifeguardConfig,
    blame: Blame,
    target: AsId,
    cache: &SharedRouteCache,
) -> Result<RepairPlan, String> {
    let culprit = blame.poison_target();
    if culprit == cfg.origin {
        return Err("failure is in our own network; fix locally".into());
    }
    if culprit == target {
        return Err("failure is inside the destination AS; poisoning cannot help".into());
    }
    let providers = providers_of(net, cfg);
    if providers.contains(&culprit) && providers.len() == 1 {
        return Err("culprit is our only provider; poisoning would cut us off".into());
    }

    // Selective poisoning first when the blame is a link and we have the
    // provider diversity for it.
    if let Blame::Link(a, b) = blame {
        if providers.len() >= 2 {
            if let Some(plan) = try_selective(net, cfg, &providers, a, b, target, cache) {
                return Ok(plan);
            }
        }
    }

    // Global poison; discover the needed poison count (1, or 2 for lenient
    // loop detection) from the predicted fixed point.
    for copies in 1..=2usize {
        let poisons = vec![culprit; copies];
        let spec = AnnouncementSpec::via(
            cfg.production,
            cfg.origin,
            lg_bgp::AsPath::poisoned(cfg.origin, &poisons),
            &providers,
        );
        let table = cache.compute(net, &spec);
        if table.has_route(culprit) {
            continue; // poison did not stick (lenient loop detection)
        }
        if !table.has_route(target) {
            return Err(format!(
                "no alternate policy-compliant path for {target} avoiding {culprit}"
            ));
        }
        return Ok(RepairPlan {
            spec,
            poisoned: culprit,
            poison_copies: copies,
            selective: false,
        });
    }
    Err(format!(
        "{culprit} accepts paths containing itself; poison cannot stick"
    ))
}

/// Search for a selective poisoning that steers `a` off the link `a`-`b`
/// without cutting `a` (or the target) off: poison `a` on announcements via
/// some providers, announce clean via the rest, and accept the first
/// configuration whose predicted fixed point has `a` routed around `b`.
fn try_selective(
    net: &Network,
    cfg: &LifeguardConfig,
    providers: &[AsId],
    a: AsId,
    b: AsId,
    target: AsId,
    cache: &SharedRouteCache,
) -> Option<RepairPlan> {
    // Candidate poison_via sets: each single provider, then each
    // complement-of-one (poison everywhere except one provider).
    let mut candidates: Vec<Vec<AsId>> = providers.iter().map(|p| vec![*p]).collect();
    if providers.len() > 2 {
        for keep_clean in providers {
            candidates.push(
                providers
                    .iter()
                    .copied()
                    .filter(|p| p != keep_clean)
                    .collect(),
            );
        }
    }
    for poison_via in candidates {
        let spec =
            AnnouncementSpec::selective_poison(net, cfg.production, cfg.origin, &[a], &poison_via);
        let table = cache.compute(net, &spec);
        let Some(a_path) = table.as_path(a) else {
            continue; // a lost its route entirely: not selective enough
        };
        // a must now route around the failing link: its path no longer
        // crosses b.
        if a_path.contains(&b) {
            continue;
        }
        if !table.has_route(target) {
            continue;
        }
        return Some(RepairPlan {
            spec,
            poisoned: a,
            poison_copies: 1,
            selective: true,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SentinelStrategy;
    use lg_asmap::GraphBuilder;
    use lg_bgp::{ImportPolicy, LoopDetection, Prefix};
    use lg_sim::compute_routes;

    fn pfx() -> Prefix {
        Prefix::from_octets(184, 164, 224, 0, 20)
    }

    fn cfg(origin: AsId, providers: Vec<AsId>) -> LifeguardConfig {
        let mut c = LifeguardConfig::paper_defaults(
            origin,
            pfx(),
            Prefix::from_octets(184, 164, 224, 0, 19),
        );
        c.providers = providers;
        c
    }

    /// Fig 2-like: O(0) under B(2); B under C(3) and A(1); C under D(4); A
    /// and D under E(5); F(6) under A.
    fn fig2() -> Network {
        let mut g = GraphBuilder::with_ases(7);
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(2));
        g.provider_customer(AsId(1), AsId(2));
        g.provider_customer(AsId(4), AsId(3));
        g.provider_customer(AsId(5), AsId(1));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(1));
        Network::new(g.build())
    }

    #[test]
    fn global_poison_with_alternate_path() {
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.poisoned, AsId(1));
        assert_eq!(plan.poison_copies, 1);
        assert!(!plan.selective);
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(1)));
        assert!(table.has_route(AsId(5)), "E rerouted via D");
    }

    #[test]
    fn refuses_when_target_captive() {
        // F(6) is captive behind A(1): no poison can restore it.
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let err = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(6)).unwrap_err();
        assert!(err.contains("no alternate"), "{err}");
    }

    #[test]
    fn refuses_culprit_in_destination() {
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        assert!(plan_repair(&net, &c, Blame::As(AsId(5)), AsId(5)).is_err());
    }

    #[test]
    fn refuses_sole_provider() {
        let net = fig2();
        let c = cfg(AsId(0), vec![AsId(2)]);
        let err = plan_repair(&net, &c, Blame::As(AsId(2)), AsId(5)).unwrap_err();
        assert!(err.contains("only provider"), "{err}");
    }

    #[test]
    fn doubles_poison_for_lenient_loop_detection() {
        let mut net = fig2();
        net.set_policy(
            AsId(1),
            ImportPolicy {
                loop_detection: LoopDetection::max_occurrences(1),
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.poison_copies, 2);
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(1)));
    }

    #[test]
    fn gives_up_when_loop_detection_disabled() {
        let mut net = fig2();
        net.set_policy(
            AsId(1),
            ImportPolicy {
                loop_detection: LoopDetection::disabled(),
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let err = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap_err();
        assert!(err.contains("cannot stick"), "{err}");
    }

    /// Fig 3 world: O(0) with providers D1(1), D2(2); B1(3) over D1, B2(4)
    /// over D2; A(5) over both B1 and B2; C3(6) behind A.
    fn fig3() -> Network {
        let mut g = GraphBuilder::with_ases(7);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(1));
        g.provider_customer(AsId(4), AsId(2));
        g.provider_customer(AsId(5), AsId(3));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(5));
        Network::new(g.build())
    }

    #[test]
    fn selective_poison_avoids_link_keeping_a_routed() {
        let net = fig3();
        let c = cfg(AsId(0), vec![AsId(1), AsId(2)]);
        // Blame the link A(5)-B2(4).
        let plan = plan_repair(&net, &c, Blame::Link(AsId(5), AsId(4)), AsId(6)).unwrap();
        assert!(plan.selective);
        let table = compute_routes(&net, &plan.spec);
        // A keeps a route, now via B1, and so does its captive C3.
        let a_path = table.as_path(AsId(5)).unwrap();
        assert!(!a_path.contains(&AsId(4)), "A must avoid B2: {a_path:?}");
        assert!(a_path.contains(&AsId(3)), "A now routes via B1: {a_path:?}");
        assert!(table.has_route(AsId(6)));
        // B2 itself keeps its (clean) route via D2.
        assert_eq!(table.next_hop(AsId(4)), Some(AsId(2)));
    }

    #[test]
    fn selective_falls_back_to_global_without_disjoint_paths() {
        // Single-provider topology: selective impossible; link blame should
        // fall back to a global poison of A if alternates exist, or error.
        let net = fig2();
        let c = cfg(AsId(0), vec![AsId(2)]);
        // Culprit A(1)-E(5) link; only provider is B(2): global poison of A.
        let plan = plan_repair(&net, &c, Blame::Link(AsId(1), AsId(5)), AsId(5));
        // Global poison of A restores E via D.
        let plan = plan.unwrap();
        assert!(!plan.selective);
        assert_eq!(plan.poisoned, AsId(1));
    }

    #[test]
    fn sentinel_strategy_is_not_part_of_repair_spec() {
        // The production spec must target only the production prefix.
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.spec.prefix, c.production);
        assert!(matches!(c.sentinel, SentinelStrategy::LessSpecific { .. }));
    }
}
