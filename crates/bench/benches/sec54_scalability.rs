//! Regenerates §5.4: atlas refresh economics (amortized probe cost via the
//! convergence cache) and isolation latency/probe budget.

use lg_bench::accuracy::{run_accuracy, AccuracyConfig};
use lg_bench::report::Table;
use lg_bench::scalability::{refresh_table, run_refresh, RefreshConfig};

fn main() {
    eprintln!("atlas refresh rounds ...");
    let r = run_refresh(&RefreshConfig::standard(54));
    refresh_table(&r).print();
    eprintln!("isolation cost (from the accuracy study) ...");
    let acc = run_accuracy(&AccuracyConfig::standard(54));
    let mut t = Table::new(
        "§5.4 Scalability: isolation cost",
        &["metric", "paper", "measured"],
    );
    t.row(&[
        "mean isolation time (poisonable outages)".into(),
        "140s".into(),
        format!("{:.0}s", acc.mean_isolation_secs()),
    ]);
    t.row(&[
        "probes per isolation".into(),
        "~280".into(),
        format!("{:.0}", acc.mean_probes()),
    ]);
    t.print();
    lg_telemetry::emit_if_configured();
}
