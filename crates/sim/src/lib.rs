//! AS-level Internet simulation for the LIFEGUARD reproduction.
//!
//! The paper's experiments run against the live Internet; this crate supplies
//! the substitute: a policy-faithful BGP world with two engines over one
//! network model.
//!
//! * [`static_routes`] computes the routing fixed point (Gao-Rexford
//!   local-preference, shortest path, deterministic tiebreaks, loop
//!   detection, per-neighbor announcement variants) — used for the
//!   large-scale availability and poisoning-efficacy studies (§2.2, §5.1),
//!   exactly as the paper's own simulation methodology does.
//! * [`compute`] layers batching, parallelism, and generation-keyed
//!   memoization over the static engine — the evaluation workloads compute
//!   hundreds of what-if tables over one network and should not pay for the
//!   same fixed point twice.
//! * [`dynamic`] is an event-driven message-level BGP engine with MRAI
//!   timers, used for the convergence and disruption studies (Fig 6, §5.2,
//!   Table 2's per-router update counts).
//!
//! [`dataplane`] forwards packets hop-by-hop over either engine's tables with
//! longest-prefix match (so sentinel less-specifics behave correctly) and
//! injects failures — including the *silent* failures at the heart of the
//! paper: elements that keep announcing routes but drop packets, possibly in
//! only one direction, toward only some destinations, or only for traffic
//! entering over a particular adjacency.

pub mod announce;
pub mod compute;
pub mod dataplane;
pub mod dynamic;
pub mod failures;
pub mod network;
pub(crate) mod packing;
pub(crate) mod parallel;
pub mod publish;
pub mod static_routes;
pub mod time;

pub use announce::AnnouncementSpec;
pub use compute::{RouteComputer, RouteTableCache, SharedRouteCache};
pub use dataplane::{DataPlane, Fib, Walk, WalkOutcome};
pub use dynamic::{DynamicSim, DynamicSimConfig, OutQueue, PrefixMetrics, UpdateRecord};
pub use failures::{Direction, Failure, FailureSet, NetElement};
pub use network::{DirtyScope, MutationRecord, Network};
pub use static_routes::{compute_routes, effective_path, RouteTable};
pub use time::{Time, TimerWheel};
