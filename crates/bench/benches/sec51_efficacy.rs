//! Regenerates §5.1: how often alternate routes exist around poisoned ASes
//! (BGP-Mux-style deployment + large-scale simulation).

use lg_asmap::TopologyConfig;
use lg_bench::efficacy::{efficacy_table, run_largescale, run_mux_efficacy};
use lg_bench::worlds::mux_world;

fn main() {
    eprintln!("harvest-and-poison sweep over a ~1000-AS topology ...");
    let world = mux_world(&TopologyConfig::medium(42), 1, 150);
    let mux = run_mux_efficacy(&world, 60);
    eprintln!("large-scale path sweep ...");
    let sim = run_largescale(&TopologyConfig::medium(43), 25, 40);
    efficacy_table(&mux, &sim).print();
}
