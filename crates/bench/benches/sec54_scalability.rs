//! Regenerates §5.4: atlas refresh economics (amortized probe cost via the
//! convergence cache), isolation latency/probe budget, and the
//! Internet-scale size curve (calibrated 1k..25k topologies, 75k with
//! `LG_SCALE_MAX`) through generation, preprocessing, and the frontier
//! fixed point.
//!
//! Emits the size curve as JSON to the path in `LG_SCALABILITY_OUT` when
//! set; the CI `scalability` job validates it (monotone sizes,
//! sub-quadratic fixed-point growth) and uploads it as an artifact.

use lg_bench::accuracy::{run_accuracy, AccuracyConfig};
use lg_bench::report::Table;
use lg_bench::scalability::{
    refresh_table, run_refresh, run_scale_curve, scale_json, scale_sizes, scale_table,
    RefreshConfig,
};

fn main() {
    lg_telemetry::trace::enable_from_env();
    eprintln!("atlas refresh rounds ...");
    let r = run_refresh(&RefreshConfig::standard(54));
    refresh_table(&r).print();
    eprintln!("isolation cost (from the accuracy study) ...");
    let acc = run_accuracy(&AccuracyConfig::standard(54));
    let mut t = Table::new(
        "§5.4 Scalability: isolation cost",
        &["metric", "paper", "measured"],
    );
    t.row(&[
        "mean isolation time (poisonable outages)".into(),
        "140s".into(),
        format!("{:.0}s", acc.mean_isolation_secs()),
    ]);
    t.row(&[
        "probes per isolation".into(),
        "~280".into(),
        format!("{:.0}", acc.mean_probes()),
    ]);
    t.print();

    let sizes = scale_sizes();
    eprintln!("control-plane size curve over {sizes:?} ASes ...");
    let points = run_scale_curve(&sizes, 54);
    scale_table(&points).print();

    // Sub-quadratic gate, also re-checked by CI from the JSON: doubling-ish
    // the AS count must not quadruple-ish the fixed-point time. Compared
    // end-to-end (1k vs the largest size) to ride over per-point noise.
    let (first, last) = (&points[0], &points[points.len() - 1]);
    let growth = last.fixed_point_ms / first.fixed_point_ms.max(1e-6);
    let quad = ((last.n as f64) / (first.n as f64)).powi(2);
    println!(
        "fixed-point growth {}k -> {}k: {growth:.1}x (quadratic would be {quad:.0}x)",
        first.n / 1000,
        last.n / 1000
    );
    if growth >= quad {
        eprintln!("FAIL: fixed point grew at least quadratically in AS count");
        std::process::exit(1);
    }

    if let Ok(path) = std::env::var("LG_SCALABILITY_OUT") {
        std::fs::write(&path, scale_json(&points)).expect("write scalability artifact");
        println!("size curve written to {path}");
    }

    lg_telemetry::emit_if_configured();
}
