//! The LIFEGUARD control loop.

use crate::config::LifeguardConfig;
use crate::decide::plan_repair_cached;
use crate::events::{Event, EventKind};
use crate::world::World;
use lg_asmap::AsId;
use lg_bgp::AsPath;
use lg_locate::{FailureDirection, Isolator};
use lg_sim::dataplane::infra_addr;
use lg_sim::{AnnouncementSpec, Time};
use lg_telemetry::{trace, Counter, Histogram, Registry, TraceId};
use std::collections::HashMap;

/// Registry handles for the repair loop (`core.*` metrics). Every event
/// appended to the log is also tallied here, so process-wide dashboards see
/// outage/repair activity without walking per-instance event logs.
struct CoreTelemetry {
    outages_detected: Counter,
    isolations: Counter,
    poisons_applied: Counter,
    poisons_skipped: Counter,
    repairs: Counter,
    failures_healed: Counter,
    unpoisons: Counter,
    /// Modeled isolation latency, from `IsolationCompleted::elapsed_ms`.
    isolation_ms: Histogram,
    /// Failure-to-repair latency, from `Repaired::downtime_ms`.
    repair_downtime_ms: Histogram,
}

impl CoreTelemetry {
    fn from_registry(r: &Registry) -> Self {
        CoreTelemetry {
            outages_detected: r.counter("core.outages_detected"),
            isolations: r.counter("core.isolations"),
            poisons_applied: r.counter("core.poisons_applied"),
            poisons_skipped: r.counter("core.poisons_skipped"),
            repairs: r.counter("core.repairs"),
            failures_healed: r.counter("core.failures_healed"),
            unpoisons: r.counter("core.unpoisons"),
            isolation_ms: r.histogram("core.isolation_ms"),
            repair_downtime_ms: r.histogram("core.repair_downtime_ms"),
        }
    }

    fn observe(&self, kind: &EventKind) {
        match kind {
            EventKind::OutageDetected { .. } => self.outages_detected.inc(),
            EventKind::IsolationCompleted { elapsed_ms, .. } => {
                self.isolations.inc();
                self.isolation_ms.record(*elapsed_ms);
            }
            EventKind::Poisoned { .. } => self.poisons_applied.inc(),
            EventKind::PoisonSkipped { .. } => self.poisons_skipped.inc(),
            EventKind::Repaired { downtime_ms, .. } => {
                self.repairs.inc();
                self.repair_downtime_ms.record(*downtime_ms);
            }
            EventKind::FailureHealed { .. } => self.failures_healed.inc(),
            EventKind::Unpoisoned { .. } => self.unpoisons.inc(),
        }
    }
}

impl Default for CoreTelemetry {
    fn default() -> Self {
        Self::from_registry(lg_telemetry::global())
    }
}

/// Per-target state of the repair loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetState {
    /// Healthy-path monitoring; counts consecutive failed ping pairs.
    Monitoring {
        /// Failed ping pairs in a row.
        consecutive_failures: u32,
    },
    /// A poison is in place; the sentinel watches for the failure to heal.
    Poisoned {
        /// The poisoned AS.
        poisoned: AsId,
        /// Selective or global.
        selective: bool,
        /// Copies of the poisoned AS in the path (2 for lenient loop
        /// detection, §7.1).
        copies: u8,
        /// When the outage began (first failed pair).
        outage_started: Time,
        /// Last sentinel repair check.
        last_sentinel_check: Time,
        /// The announcement this repair wants (used verbatim while it is
        /// the only active repair; folded into a union poison otherwise).
        spec: AnnouncementSpec,
    },
    /// Poisoning was not applicable; retried after a back-off.
    Unfixable {
        /// When the decision was made.
        since: Time,
        /// Why.
        reason: String,
    },
}

/// One LIFEGUARD instance: configuration, per-target state, event log.
pub struct Lifeguard {
    cfg: LifeguardConfig,
    states: HashMap<AsId, TargetState>,
    events: Vec<Event>,
    outage_started: HashMap<AsId, Time>,
    /// Predicted-fixed-point tables memoized across repair planning and
    /// union-conflict checks; invalidates itself (incrementally) on network
    /// mutations. Shareable: several instances monitoring different targets
    /// over one topology can hand the same `Arc` to
    /// [`Lifeguard::with_shared_cache`] and reuse each other's fixed
    /// points, including from concurrent threads.
    route_cache: std::sync::Arc<lg_sim::SharedRouteCache>,
    /// Live causal-chain ids, one per target currently in an incident
    /// (minted at the first failed ping pair, retired when the target
    /// returns to healthy monitoring). Every logged event and every
    /// flight-recorder span of the repair lifecycle carries this id.
    traces: HashMap<AsId, TraceId>,
    tele: CoreTelemetry,
}

impl Lifeguard {
    /// Build a system for `cfg` with a private route cache.
    ///
    /// # Panics
    /// Panics when the configuration fails [`LifeguardConfig::validate`].
    pub fn new(cfg: LifeguardConfig) -> Self {
        Self::with_shared_cache(cfg, std::sync::Arc::new(lg_sim::SharedRouteCache::new()))
    }

    /// Like [`Lifeguard::new`], but reporting `core.*` metrics into
    /// `registry` instead of the process-global one.
    ///
    /// # Panics
    /// Panics when the configuration fails [`LifeguardConfig::validate`].
    pub fn with_registry(cfg: LifeguardConfig, registry: &Registry) -> Self {
        let mut lg = Self::new(cfg);
        lg.tele = CoreTelemetry::from_registry(registry);
        lg
    }

    /// Build a system that shares `cache` with other instances working the
    /// same topology.
    ///
    /// # Panics
    /// Panics when the configuration fails [`LifeguardConfig::validate`].
    pub fn with_shared_cache(
        cfg: LifeguardConfig,
        cache: std::sync::Arc<lg_sim::SharedRouteCache>,
    ) -> Self {
        cfg.validate().expect("invalid LIFEGUARD configuration");
        let states = cfg
            .targets
            .iter()
            .map(|t| {
                (
                    *t,
                    TargetState::Monitoring {
                        consecutive_failures: 0,
                    },
                )
            })
            .collect();
        Lifeguard {
            cfg,
            states,
            events: Vec::new(),
            outage_started: HashMap::new(),
            route_cache: cache,
            traces: HashMap::new(),
            tele: CoreTelemetry::default(),
        }
    }

    /// The predicted-fixed-point cache (hand a clone of this to
    /// [`Lifeguard::with_shared_cache`] to share it).
    pub fn route_cache(&self) -> &std::sync::Arc<lg_sim::SharedRouteCache> {
        &self.route_cache
    }

    /// Configuration.
    pub fn config(&self) -> &LifeguardConfig {
        &self.cfg
    }

    /// Event log so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Current state for a target.
    pub fn state(&self, target: AsId) -> Option<&TargetState> {
        self.states.get(&target)
    }

    /// Is any poison currently in place?
    pub fn poisoning_active(&self) -> bool {
        self.states
            .values()
            .any(|s| matches!(s, TargetState::Poisoned { .. }))
    }

    /// Trace id of the incident `target` is currently in, if any.
    pub fn trace_of(&self, target: AsId) -> Option<TraceId> {
        self.traces.get(&target).copied()
    }

    fn log(&mut self, at: Time, kind: EventKind) {
        let trace_id = self
            .traces
            .get(&kind.target())
            .copied()
            .unwrap_or(TraceId::NONE);
        self.tele.observe(&kind);
        trace_event(trace_id, at, &kind);
        self.events.push(Event {
            at,
            trace: trace_id,
            kind,
        });
    }

    /// The steady-state baseline announcement for the production prefix.
    pub fn baseline_spec(&self, world: &World<'_>) -> AnnouncementSpec {
        let path = AsPath::prepended_baseline(self.cfg.origin, self.cfg.prepend_copies);
        if self.cfg.providers.is_empty() {
            AnnouncementSpec::uniform(
                world.dp.network(),
                self.cfg.production,
                self.cfg.origin,
                path,
            )
        } else {
            AnnouncementSpec::via(
                self.cfg.production,
                self.cfg.origin,
                path,
                &self.cfg.providers,
            )
        }
    }

    /// Re-announce the production prefix so it reflects every currently
    /// active repair. One prefix carries all targets, so concurrent repairs
    /// must share the announcement: zero active poisons → the baseline; a
    /// single one → its (possibly selective) plan; several → a global
    /// union poison `O-A1-..-Ak-O` (per-provider selectivity cannot be
    /// combined across plans, so the union falls back to global poisoning).
    fn reannounce_production(&mut self, world: &mut World<'_>) {
        let active: Vec<(AsId, u8, AnnouncementSpec)> = self
            .states
            .values()
            .filter_map(|s| match s {
                TargetState::Poisoned {
                    poisoned,
                    copies,
                    spec,
                    ..
                } => Some((*poisoned, *copies, spec.clone())),
                _ => None,
            })
            .collect();
        match active.len() {
            0 => {
                let spec = self.baseline_spec(world);
                world.dp.announce(&spec);
            }
            1 => {
                world.dp.announce(&active[0].2);
            }
            _ => {
                // Union poison: every distinct culprit, at its maximum
                // required multiplicity.
                let mut by_culprit: HashMap<AsId, u8> = HashMap::new();
                for (a, copies, _) in &active {
                    let e = by_culprit.entry(*a).or_insert(0);
                    *e = (*e).max(*copies);
                }
                let mut culprits: Vec<(AsId, u8)> = by_culprit.into_iter().collect();
                culprits.sort_unstable();
                let mut poisons = Vec::new();
                for (a, copies) in culprits {
                    for _ in 0..copies {
                        poisons.push(a);
                    }
                }
                let path = AsPath::poisoned(self.cfg.origin, &poisons);
                let spec = if self.cfg.providers.is_empty() {
                    AnnouncementSpec::uniform(
                        world.dp.network(),
                        self.cfg.production,
                        self.cfg.origin,
                        path,
                    )
                } else {
                    AnnouncementSpec::via(
                        self.cfg.production,
                        self.cfg.origin,
                        path,
                        &self.cfg.providers,
                    )
                };
                world.dp.announce(&spec);
            }
        }
    }

    /// Announce the baseline production prefix and the sentinel, and warm
    /// the atlas. Call once before ticking.
    pub fn install(&mut self, world: &mut World<'_>, now: Time) {
        world.dp.announce(&self.baseline_spec(world));
        if let Some(sentinel) = self.cfg.sentinel_prefix() {
            let path = AsPath::prepended_baseline(self.cfg.origin, self.cfg.prepend_copies);
            let spec = if self.cfg.providers.is_empty() {
                AnnouncementSpec::uniform(world.dp.network(), sentinel, self.cfg.origin, path)
            } else {
                AnnouncementSpec::via(sentinel, self.cfg.origin, path, &self.cfg.providers)
            };
            world.dp.announce(&spec);
        }
        let targets = self.cfg.targets.clone();
        world.warm_atlas(self.cfg.origin, &targets, now);
    }

    /// Monitoring ping pair from the production prefix to `target`; true
    /// when at least one ping of the pair gets a response.
    fn ping_pair_ok(&mut self, world: &mut World<'_>, now: Time, target: AsId) -> bool {
        let src_addr = self.cfg.production.nth_addr(1);
        let dst = infra_addr(target);
        let a = world
            .prober
            .ping_from_addr(&world.dp, now, self.cfg.origin, src_addr, dst);
        let b = world
            .prober
            .ping_from_addr(&world.dp, now, self.cfg.origin, src_addr, dst);
        a.responded || b.responded
    }

    /// One monitoring round at `now`. Call every
    /// [`LifeguardConfig::ping_interval_ms`].
    pub fn tick(&mut self, world: &mut World<'_>, now: Time) {
        let targets = self.cfg.targets.clone();
        for target in targets {
            let state = self
                .states
                .get(&target)
                .cloned()
                .unwrap_or(TargetState::Monitoring {
                    consecutive_failures: 0,
                });
            // Probes and nested work for a target mid-incident inherit
            // its causal chain through the ambient trace scope.
            let _tscope = trace::scope(self.trace_of(target).unwrap_or(TraceId::NONE));
            match state {
                TargetState::Monitoring {
                    consecutive_failures,
                } => {
                    if self.ping_pair_ok(world, now, target) {
                        self.outage_started.remove(&target);
                        self.traces.remove(&target);
                        self.states.insert(
                            target,
                            TargetState::Monitoring {
                                consecutive_failures: 0,
                            },
                        );
                        continue;
                    }
                    let streak = consecutive_failures + 1;
                    if streak == 1 {
                        // First failed pair: the incident opens here. Mint
                        // its causal chain so detection lag is part of the
                        // traced downtime breakdown.
                        let id = *self.traces.entry(target).or_insert_with(TraceId::mint);
                        trace::instant_for(id, "monitor.open", now.millis());
                    }
                    self.outage_started.entry(target).or_insert(now);
                    if streak < self.cfg.outage_threshold {
                        self.states.insert(
                            target,
                            TargetState::Monitoring {
                                consecutive_failures: streak,
                            },
                        );
                        continue;
                    }
                    self.log(now, EventKind::OutageDetected { target });
                    self.handle_outage(world, now, target);
                }
                TargetState::Poisoned {
                    poisoned,
                    selective,
                    copies,
                    outage_started,
                    last_sentinel_check,
                    spec,
                } => {
                    if now - last_sentinel_check < self.cfg.sentinel_check_interval_ms {
                        continue;
                    }
                    if self.sentinel_detects_repair(world, now, target, poisoned) {
                        self.log(now, EventKind::FailureHealed { target });
                        self.states.insert(
                            target,
                            TargetState::Monitoring {
                                consecutive_failures: 0,
                            },
                        );
                        // Drop this repair from the shared announcement
                        // (back to baseline only when it was the last one).
                        self.reannounce_production(world);
                        self.log(now, EventKind::Unpoisoned { target });
                        // The causal chain ends at unpoison.
                        self.traces.remove(&target);
                    } else {
                        self.states.insert(
                            target,
                            TargetState::Poisoned {
                                poisoned,
                                selective,
                                copies,
                                outage_started,
                                last_sentinel_check: now,
                                spec,
                            },
                        );
                    }
                }
                TargetState::Unfixable { since, .. } => {
                    if now - since >= self.cfg.unfixable_retry_ms {
                        self.outage_started.remove(&target);
                        // Retry opens a fresh incident (and chain) if the
                        // target is still dark.
                        self.traces.remove(&target);
                        self.states.insert(
                            target,
                            TargetState::Monitoring {
                                consecutive_failures: 0,
                            },
                        );
                    }
                }
            }
        }
    }

    fn handle_outage(&mut self, world: &mut World<'_>, now: Time, target: AsId) {
        let trace_id = self.trace_of(target).unwrap_or(TraceId::NONE);
        let _tscope = trace::scope(trace_id);
        let isolation_span = trace::span("repair.isolation");
        let isolator = Isolator::new(self.cfg.vantage_points.clone());
        let report = isolator.isolate(
            &world.dp,
            &mut world.prober,
            &world.atlas,
            &world.resp,
            now,
            self.cfg.origin,
            target,
        );
        drop(isolation_span);
        let after_isolation = now + report.elapsed_ms;
        self.log(
            after_isolation,
            EventKind::IsolationCompleted {
                target,
                direction: report.direction,
                blame: report.blame,
                elapsed_ms: report.elapsed_ms,
            },
        );

        if report.direction == FailureDirection::NoFailure {
            self.states.insert(
                target,
                TargetState::Monitoring {
                    consecutive_failures: 0,
                },
            );
            return;
        }
        let Some(blame) = report.blame else {
            let reason = "could not isolate a culprit".to_string();
            self.log(
                after_isolation,
                EventKind::PoisonSkipped {
                    target,
                    reason: reason.clone(),
                },
            );
            self.states.insert(
                target,
                TargetState::Unfixable {
                    since: after_isolation,
                    reason,
                },
            );
            return;
        };

        let plan_span = trace::span("repair.plan");
        let plan_result = plan_repair_cached(
            world.dp.network(),
            &self.cfg,
            blame,
            target,
            &self.route_cache,
        )
        .and_then(|plan| {
            // The production prefix is shared: verify the new poison is
            // compatible with every repair already in place (the union
            // announcement must keep all poisoned targets routable).
            self.union_conflict(world, &plan, target)
                .map_or(Ok(plan), Err)
        });
        drop(plan_span);
        match plan_result {
            Ok(plan) => {
                let outage_started = *self.outage_started.get(&target).unwrap_or(&now);
                self.states.insert(
                    target,
                    TargetState::Poisoned {
                        poisoned: plan.poisoned,
                        selective: plan.selective,
                        copies: plan.poison_copies as u8,
                        outage_started,
                        last_sentinel_check: after_isolation + self.cfg.convergence_ms,
                        spec: plan.spec.clone(),
                    },
                );
                // Fold into the shared production announcement (unions with
                // any other active repairs).
                self.reannounce_production(world);
                self.log(
                    after_isolation,
                    EventKind::Poisoned {
                        target,
                        poisoned: plan.poisoned,
                        selective: plan.selective,
                    },
                );
                // Verify restoration once routes converge. The modeled
                // convergence wait is the "quiescence" leg of the traced
                // downtime breakdown (§6: wait out convergence).
                let converged = after_isolation + self.cfg.convergence_ms;
                trace::instant_for(trace_id, "repair.quiescence", converged.millis());
                trace::annot_u64_for(trace_id, "repair.convergence_ms", self.cfg.convergence_ms);
                if self.ping_pair_ok(world, converged, target) {
                    self.log(
                        converged,
                        EventKind::Repaired {
                            target,
                            downtime_ms: converged - outage_started,
                        },
                    );
                }
            }
            Err(reason) => {
                self.log(
                    after_isolation,
                    EventKind::PoisonSkipped {
                        target,
                        reason: reason.clone(),
                    },
                );
                self.states.insert(
                    target,
                    TargetState::Unfixable {
                        since: after_isolation,
                        reason,
                    },
                );
            }
        }
    }

    /// Would adding `plan` to the active repairs strand any poisoned
    /// target (including the new one)? Returns the reason when it would.
    fn union_conflict(
        &mut self,
        world: &World<'_>,
        plan: &crate::decide::RepairPlan,
        new_target: AsId,
    ) -> Option<String> {
        let mut by_culprit: HashMap<AsId, u8> = HashMap::new();
        let mut watched: Vec<AsId> = vec![new_target];
        for (t, s) in &self.states {
            if let TargetState::Poisoned {
                poisoned, copies, ..
            } = s
            {
                let e = by_culprit.entry(*poisoned).or_insert(0);
                *e = (*e).max(*copies);
                watched.push(*t);
            }
        }
        if by_culprit.is_empty() {
            return None; // nothing active: the plan stands alone
        }
        let e = by_culprit.entry(plan.poisoned).or_insert(0);
        *e = (*e).max(plan.poison_copies as u8);
        let mut culprits: Vec<(AsId, u8)> = by_culprit.into_iter().collect();
        culprits.sort_unstable();
        let mut poisons = Vec::new();
        for (a, copies) in culprits {
            for _ in 0..copies {
                poisons.push(a);
            }
        }
        let path = AsPath::poisoned(self.cfg.origin, &poisons);
        let spec = if self.cfg.providers.is_empty() {
            AnnouncementSpec::uniform(
                world.dp.network(),
                self.cfg.production,
                self.cfg.origin,
                path,
            )
        } else {
            AnnouncementSpec::via(
                self.cfg.production,
                self.cfg.origin,
                path,
                &self.cfg.providers,
            )
        };
        let table = self.route_cache.compute(world.dp.network(), &spec);
        for t in watched {
            if !table.has_route(t) {
                return Some(format!(
                    "poisoning {} would strand {t} given the active repairs",
                    plan.poisoned
                ));
            }
        }
        None
    }

    /// Sentinel repair check (§4.2): ping the target sourced from the
    /// sentinel's unused space so the response routes over the *unpoisoned*
    /// sentinel prefix — i.e. back through the poisoned AS — revealing
    /// whether the underlying failure has healed. Without unused sentinel
    /// space, probe the poisoned AS itself.
    fn sentinel_detects_repair(
        &mut self,
        world: &mut World<'_>,
        now: Time,
        target: AsId,
        poisoned: AsId,
    ) -> bool {
        match self.cfg.sentinel_unused_addr() {
            Some(src_addr) => {
                world
                    .prober
                    .ping_from_addr(
                        &world.dp,
                        now,
                        self.cfg.origin,
                        src_addr,
                        infra_addr(target),
                    )
                    .responded
            }
            None => {
                world
                    .prober
                    .ping(&world.dp, now, self.cfg.origin, infra_addr(poisoned))
                    .responded
            }
        }
    }
}

/// Mirror a ledger event into the flight recorder: an instant named after
/// the lifecycle step, stamped with the event's *simulated* time in
/// millis as its value (recorder ticks are wall-clock; carrying sim-time
/// in the payload lets consumers reconstruct the §4/§6 downtime
/// breakdown), plus annotations for the breakdown legs.
fn trace_event(trace_id: TraceId, at: Time, kind: &EventKind) {
    if !trace::enabled() {
        return;
    }
    let name = match kind {
        EventKind::OutageDetected { .. } => "repair.outage_detected",
        EventKind::IsolationCompleted { .. } => "repair.isolation_completed",
        EventKind::Poisoned { .. } => "repair.poisoned",
        EventKind::PoisonSkipped { .. } => "repair.poison_skipped",
        EventKind::Repaired { .. } => "repair.repaired",
        EventKind::FailureHealed { .. } => "repair.healed",
        EventKind::Unpoisoned { .. } => "repair.unpoisoned",
    };
    trace::instant_for(trace_id, name, at.millis());
    match kind {
        EventKind::IsolationCompleted { elapsed_ms, .. } => {
            trace::annot_u64_for(trace_id, "repair.isolation_ms", *elapsed_ms);
        }
        EventKind::Repaired { downtime_ms, .. } => {
            trace::annot_u64_for(trace_id, "repair.downtime_ms", *downtime_ms);
        }
        EventKind::PoisonSkipped { reason, .. } => {
            trace::annot_str_for(trace_id, "repair.skip_reason", reason);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SentinelStrategy;
    use lg_asmap::GraphBuilder;
    use lg_bgp::Prefix;
    use lg_sim::dataplane::infra_prefix;
    use lg_sim::failures::Failure;
    use lg_sim::Network;

    /// The recurring evaluation world: O(0) under B(2); B under C(3) and
    /// A(1); C under D(4); A and D under E(5); F(6) behind A; vantage
    /// points V1(7) under C and V2(8) under E.
    fn world_net() -> Network {
        let mut g = GraphBuilder::with_ases(9);
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(2));
        g.provider_customer(AsId(1), AsId(2));
        g.provider_customer(AsId(4), AsId(3));
        g.provider_customer(AsId(5), AsId(1));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(1));
        g.provider_customer(AsId(3), AsId(7));
        g.provider_customer(AsId(5), AsId(8));
        Network::new(g.build())
    }

    fn production() -> Prefix {
        Prefix::from_octets(184, 164, 224, 0, 20)
    }

    fn sentinel() -> Prefix {
        Prefix::from_octets(184, 164, 224, 0, 19)
    }

    fn make_system(targets: Vec<AsId>) -> Lifeguard {
        let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
        cfg.targets = targets;
        cfg.vantage_points = vec![AsId(7), AsId(8)];
        Lifeguard::new(cfg)
    }

    fn tick_minutes(lg: &mut Lifeguard, world: &mut World<'_>, from: Time, minutes: u64) -> Time {
        let mut t = from;
        let end = from + minutes * 60_000;
        while t <= end {
            lg.tick(world, t);
            t += lg.config().ping_interval_ms;
        }
        t
    }

    #[test]
    fn install_announces_production_and_sentinel() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5)]);
        lg.install(&mut world, Time::ZERO);
        assert!(world.dp.table(production()).is_some());
        assert!(world.dp.table(sentinel()).is_some());
        // Baseline is prepended.
        let t = world.dp.table(production()).unwrap();
        assert_eq!(t.route(AsId(2)).unwrap().path.to_string(), "0-0-0");
    }

    #[test]
    fn provider_scoped_deployment_announces_via_listed_providers_only() {
        // Diamond: origin O(3) under providers P1(1) and P2(2), both under
        // core 0. Configured to announce only via P1, P2 must learn the
        // prefix the long way (down from the core), mirroring a BGP-Mux
        // deployment with a single upstream.
        let mut g = GraphBuilder::with_ases(4);
        g.provider_customer(AsId(0), AsId(1));
        g.provider_customer(AsId(0), AsId(2));
        g.provider_customer(AsId(1), AsId(3));
        g.provider_customer(AsId(2), AsId(3));
        let net = Network::new(g.build());
        let mut world = World::new(&net);
        let mut cfg = LifeguardConfig::paper_defaults(AsId(3), production(), sentinel());
        cfg.providers = vec![AsId(1)];
        let mut lg = Lifeguard::new(cfg);
        lg.install(&mut world, Time::ZERO);
        let table = world.dp.table(production()).unwrap();
        // P1 got the seed directly; P2 learned it via the core.
        assert_eq!(table.route(AsId(1)).unwrap().learned_from, AsId(3));
        let p2 = table.route(AsId(2)).expect("P2 reachable via the core");
        assert_eq!(p2.learned_from, AsId(0));
    }

    #[test]
    fn healthy_targets_stay_monitoring() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5)]);
        lg.install(&mut world, Time::ZERO);
        tick_minutes(&mut lg, &mut world, Time::from_secs(60), 10);
        assert_eq!(
            lg.state(AsId(5)),
            Some(&TargetState::Monitoring {
                consecutive_failures: 0
            })
        );
        assert!(lg.events().is_empty());
    }

    #[test]
    fn end_to_end_outage_poison_heal_unpoison() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5)]);
        lg.install(&mut world, Time::ZERO);

        // Healthy period.
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);

        // A reverse-path silent failure in A (AS1) toward our prefixes: E's
        // replies to the production prefix die in A.
        let heal_at = t + 3_600_000; // heals after an hour
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, Some(heal_at)));
        }

        // Detection takes 4 failed pairs (2 minutes), then isolation and
        // poisoning.
        let t = tick_minutes(&mut lg, &mut world, t, 10);
        let kinds: Vec<_> = lg.events().iter().map(|e| &e.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::OutageDetected { target } if *target == AsId(5))),
            "events: {kinds:?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::Poisoned { poisoned, .. } if *poisoned == AsId(1))),
            "events: {kinds:?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::Repaired { .. })),
            "traffic must be restored: {kinds:?}"
        );
        assert!(matches!(
            lg.state(AsId(5)),
            Some(TargetState::Poisoned { poisoned, .. }) if *poisoned == AsId(1)
        ));
        // While poisoned, E routes to production via D; A itself dropped
        // the (poisoned) route. Note the announced path *content* contains
        // A by construction (O-A-O), so we check actual forwarding.
        let table = world.dp.table(production()).unwrap();
        assert_eq!(table.next_hop(AsId(5)), Some(AsId(4)));
        assert!(!table.has_route(AsId(1)));
        // The sentinel stays unpoisoned: F (captive) lost the production
        // route but keeps a backup route via the sentinel — the Backup
        // Property. Data through A still dies while A's failure is active
        // (the sentinel lets F *try*), and flows again once A heals.
        assert!(!world.dp.table(production()).unwrap().has_route(AsId(6)));
        assert!(world.dp.table(sentinel()).unwrap().has_route(AsId(6)));
        let during = world.dp.walk(t, AsId(6), production().nth_addr(1));
        assert!(!during.outcome.delivered());
        let after = world
            .dp
            .walk(heal_at + 1, AsId(6), production().nth_addr(1));
        assert!(after.outcome.delivered());

        // Keep running past the heal time: sentinel pings detect the
        // repair and the poison is withdrawn.
        tick_minutes(&mut lg, &mut world, heal_at + 60_000, 10);
        let kinds: Vec<_> = lg.events().iter().map(|e| &e.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::FailureHealed { .. })),
            "events: {kinds:?}"
        );
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, EventKind::Unpoisoned { .. })),
            "events: {kinds:?}"
        );
        // Baseline restored: E routes via A again.
        let table = world.dp.table(production()).unwrap();
        assert_eq!(table.next_hop(AsId(5)), Some(AsId(1)));
        assert!(matches!(
            lg.state(AsId(5)),
            Some(TargetState::Monitoring { .. })
        ));
    }

    #[test]
    fn sentinel_does_not_heal_while_failure_active() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5)]);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
        }
        tick_minutes(&mut lg, &mut world, t, 30);
        // Still poisoned; never unpoisoned.
        assert!(lg.poisoning_active());
        assert!(!lg
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Unpoisoned { .. })));
    }

    #[test]
    fn shared_cache_reuses_fixed_points_across_instances() {
        // Two independent Lifeguard instances over the same topology share
        // one route cache; the second instance plans the same repair without
        // recomputing a single fixed point.
        let net = world_net();
        let cache = std::sync::Arc::new(lg_sim::SharedRouteCache::new());
        let run_to_poisoned = |cache: &std::sync::Arc<lg_sim::SharedRouteCache>| {
            let mut world = World::new(&net);
            let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
            cfg.targets = vec![AsId(5)];
            cfg.vantage_points = vec![AsId(7), AsId(8)];
            let mut lg = Lifeguard::with_shared_cache(cfg, std::sync::Arc::clone(cache));
            lg.install(&mut world, Time::ZERO);
            let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
            for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
                world
                    .dp
                    .failures_mut()
                    .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
            }
            tick_minutes(&mut lg, &mut world, t, 10);
            assert!(matches!(
                lg.state(AsId(5)),
                Some(TargetState::Poisoned { poisoned, .. }) if *poisoned == AsId(1)
            ));
        };

        run_to_poisoned(&cache);
        let (m1, h1) = (cache.misses(), cache.hits());
        assert!(m1 > 0, "first instance must populate the cache");

        run_to_poisoned(&cache);
        assert_eq!(
            cache.misses(),
            m1,
            "second instance should find every fixed point already cached"
        );
        assert!(cache.hits() > h1);
    }

    #[test]
    fn captive_target_is_unfixable() {
        // F (AS6) is captive behind A: a failure in A cannot be routed
        // around for F, so LIFEGUARD must refuse to poison.
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(6)]);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
        }
        tick_minutes(&mut lg, &mut world, t, 10);
        assert!(
            lg.events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::PoisonSkipped { .. })),
            "events: {:?}",
            lg.events()
        );
        assert!(matches!(
            lg.state(AsId(6)),
            Some(TargetState::Unfixable { .. })
        ));
        // Production announcement still the baseline (never poisoned).
        let table = world.dp.table(production()).unwrap();
        assert!(table.has_route(AsId(1)));
    }

    #[test]
    fn multiple_targets_are_handled_independently() {
        let net = world_net();
        let mut world = World::new(&net);
        // Monitor both E (repairable via D) and F (captive behind A).
        let mut lg = make_system(vec![AsId(5), AsId(6)]);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
        }
        tick_minutes(&mut lg, &mut world, t, 10);
        // E gets repaired; F is unfixable; the poison for E stays up.
        assert!(matches!(
            lg.state(AsId(5)),
            Some(TargetState::Poisoned { .. })
        ));
        assert!(matches!(
            lg.state(AsId(6)),
            Some(TargetState::Unfixable { .. })
        ));
        let repaired: Vec<_> = lg
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Repaired { target, .. } => Some(*target),
                _ => None,
            })
            .collect();
        assert_eq!(repaired, vec![AsId(5)]);
    }

    #[test]
    fn unfixable_target_retries_and_recovers_after_heal() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(6)]); // captive F
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        let heal = t + 1_200_000; // heals after 20 minutes
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, Some(heal)));
        }
        let t = tick_minutes(&mut lg, &mut world, t, 10);
        assert!(matches!(
            lg.state(AsId(6)),
            Some(TargetState::Unfixable { .. })
        ));
        // Past the retry back-off and the heal: monitoring resumes and the
        // target is healthy again, with no poison ever applied.
        tick_minutes(&mut lg, &mut world, Time(heal.millis() + 60_000), 15);
        assert_eq!(
            lg.state(AsId(6)),
            Some(&TargetState::Monitoring {
                consecutive_failures: 0
            })
        );
        assert!(!lg.poisoning_active());
        let _ = t;
    }

    /// Two independent branches: O(0) dual-homed to B1(1) and B2(2); each
    /// branch forks into two transits so poisons are avoidable per branch:
    /// branch 1: A1(3) and X1(4) above B1, target T1(7) above both;
    /// branch 2: A2(5) and X2(6) above B2, target T2(8) above both.
    /// VPs 9 (above X1) and 10 (above X2).
    fn twin_branch_net() -> Network {
        let mut g = GraphBuilder::with_ases(11);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(1));
        g.provider_customer(AsId(4), AsId(1));
        g.provider_customer(AsId(5), AsId(2));
        g.provider_customer(AsId(6), AsId(2));
        g.provider_customer(AsId(7), AsId(3));
        g.provider_customer(AsId(7), AsId(4));
        g.provider_customer(AsId(8), AsId(5));
        g.provider_customer(AsId(8), AsId(6));
        g.provider_customer(AsId(9), AsId(4));
        g.provider_customer(AsId(10), AsId(6));
        Network::new(g.build())
    }

    #[test]
    fn concurrent_repairs_share_one_announcement() {
        // Two targets fail behind two different culprits with overlapping
        // windows. The single production prefix must carry BOTH poisons
        // while both repairs are active, keep the longer-lived poison when
        // the first heals, and only then return to the baseline.
        let net = twin_branch_net();
        let mut world = World::new(&net);
        let (t1, t2, a1, a2) = (AsId(7), AsId(8), AsId(3), AsId(5));
        let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
        cfg.targets = vec![t1, t2];
        cfg.vantage_points = vec![AsId(9), AsId(10)];
        let mut lg = Lifeguard::new(cfg);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);

        // Culprit A1 fails late-healing; culprit A2 heals early.
        let heal_a1 = t + 3 * 3_600_000;
        let heal_a2 = t + 3_600_000;
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(a1, covered).window(t, Some(heal_a1)));
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(a2, covered).window(t, Some(heal_a2)));
        }

        let t = tick_minutes(&mut lg, &mut world, t, 15);
        assert!(matches!(
            lg.state(t1),
            Some(TargetState::Poisoned { poisoned, .. }) if *poisoned == a1
        ));
        assert!(matches!(
            lg.state(t2),
            Some(TargetState::Poisoned { poisoned, .. }) if *poisoned == a2
        ));
        // The shared production table excludes BOTH culprits...
        let table = world.dp.table(production()).unwrap();
        assert!(!table.has_route(a1), "A1 must be poisoned");
        assert!(!table.has_route(a2), "A2 must be poisoned");
        // ...and both targets' traffic flows around them.
        for target in [t1, t2] {
            let (fwd, rev) = world.dp.round_trip(
                t,
                AsId(0),
                production().nth_addr(1),
                infra_prefix(target).nth_addr(1),
            );
            assert!(
                fwd.outcome.delivered() && rev.unwrap().outcome.delivered(),
                "{target} must be reachable under the union poison"
            );
        }

        // After A2 heals: T2 unpoisons, T1 stays poisoned; A1 stays out.
        tick_minutes(&mut lg, &mut world, heal_a2 + 60_000, 10);
        assert!(matches!(lg.state(t2), Some(TargetState::Monitoring { .. })));
        assert!(matches!(lg.state(t1), Some(TargetState::Poisoned { .. })));
        let table = world.dp.table(production()).unwrap();
        assert!(!table.has_route(a1), "A1 stays poisoned");
        assert!(table.has_route(a2), "A2's poison lifted");

        // After A1 heals too: full baseline restored.
        tick_minutes(&mut lg, &mut world, heal_a1 + 60_000, 10);
        assert!(!lg.poisoning_active());
        let table = world.dp.table(production()).unwrap();
        assert!(table.has_route(a1));
        assert!(table.has_route(a2));
    }

    #[test]
    fn conflicting_second_poison_is_skipped() {
        // In the small Fig-2-like world, poisoning E's culprit A leaves a
        // single remaining artery (via C/D). A second failure blaming C
        // would, combined with the active poison of A, strand everything —
        // the planner must refuse it rather than break the first repair.
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5), AsId(4)]); // E and D
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);

        // First: A (AS1) fails; E gets repaired by poisoning A.
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
        }
        let t = tick_minutes(&mut lg, &mut world, t, 10);
        assert!(matches!(
            lg.state(AsId(5)),
            Some(TargetState::Poisoned { poisoned, .. }) if *poisoned == AsId(1)
        ));

        // Second: C (AS3) fails, hitting D. Poisoning C alongside A would
        // strand both targets; the plan must be skipped.
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(3), covered).window(t, None));
        }
        tick_minutes(&mut lg, &mut world, t, 10);
        let skipped = lg.events().iter().any(|e| {
            matches!(
                &e.kind,
                EventKind::PoisonSkipped { target, reason }
                    if *target == AsId(4) && reason.contains("strand")
            )
        });
        assert!(skipped, "events: {:#?}", lg.events());
        // The first repair is intact: A still poisoned, E still flowing.
        let table = world.dp.table(production()).unwrap();
        assert!(!table.has_route(AsId(1)));
        assert!(matches!(
            lg.state(AsId(5)),
            Some(TargetState::Poisoned { .. })
        ));
    }

    #[test]
    fn transient_blips_do_not_trigger_isolation() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut lg = make_system(vec![AsId(5)]);
        lg.install(&mut world, Time::ZERO);
        let t0 = Time::from_secs(60);
        tick_minutes(&mut lg, &mut world, t0, 2);
        // 60-second blip (2 ticks' worth), under the 4-pair threshold.
        let blip_start = t0 + 3 * 60_000;
        world.dp.failures_mut().add(
            Failure::silent_as_toward(AsId(1), production())
                .window(blip_start, Some(blip_start + 60_000)),
        );
        tick_minutes(&mut lg, &mut world, blip_start, 5);
        assert!(
            lg.events().is_empty(),
            "no outage events for a transient blip: {:?}",
            lg.events()
        );
    }

    #[test]
    fn repair_lifecycle_reports_into_scoped_registry() {
        // The full outage -> isolate -> poison -> repair -> heal -> unpoison
        // arc, observed through a scoped registry; the sentinel-detection
        // events must also round-trip through the ledger with informative
        // renderings.
        let net = world_net();
        let mut world = World::new(&net);
        let reg = Registry::new();
        let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
        cfg.targets = vec![AsId(5)];
        cfg.vantage_points = vec![AsId(7), AsId(8)];
        let mut lg = Lifeguard::with_registry(cfg, &reg);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        let heal_at = t + 3_600_000;
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, Some(heal_at)));
        }
        tick_minutes(&mut lg, &mut world, t, 10);
        tick_minutes(&mut lg, &mut world, heal_at + 60_000, 10);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("core.outages_detected"), Some(1));
        assert_eq!(snap.counter("core.poisons_applied"), Some(1));
        assert_eq!(snap.counter("core.repairs"), Some(1));
        assert_eq!(snap.counter("core.failures_healed"), Some(1));
        assert_eq!(snap.counter("core.unpoisons"), Some(1));
        assert_eq!(snap.counter("core.poisons_skipped"), Some(0));
        let iso = snap
            .histogram("core.isolation_ms")
            .expect("isolation histogram");
        assert_eq!(iso.count, 1);
        assert!(iso.sum > 0, "modeled isolation latency must be positive");
        let down = snap
            .histogram("core.repair_downtime_ms")
            .expect("downtime histogram");
        assert_eq!(down.count, 1);

        let healed = lg
            .events()
            .iter()
            .find(|e| matches!(e.kind, EventKind::FailureHealed { .. }))
            .expect("FailureHealed in the ledger");
        assert!(healed.to_string().contains("sentinel"), "{healed}");
        let un = lg
            .events()
            .iter()
            .find(|e| matches!(e.kind, EventKind::Unpoisoned { .. }))
            .expect("Unpoisoned in the ledger");
        assert!(un.to_string().contains("restored"), "{un}");
    }

    #[test]
    fn poison_skip_round_trips_through_ledger_and_registry() {
        // Captive F cannot be repaired: the skip shows up both as a
        // formatted ledger event carrying the reason and as a counter.
        let net = world_net();
        let mut world = World::new(&net);
        let reg = Registry::new();
        let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
        cfg.targets = vec![AsId(6)];
        cfg.vantage_points = vec![AsId(7), AsId(8)];
        let mut lg = Lifeguard::with_registry(cfg, &reg);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        for covered in [production(), sentinel(), infra_prefix(AsId(0))] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, None));
        }
        tick_minutes(&mut lg, &mut world, t, 10);

        let skipped = lg
            .events()
            .iter()
            .find(|e| matches!(e.kind, EventKind::PoisonSkipped { .. }))
            .expect("PoisonSkipped in the ledger");
        let s = skipped.to_string();
        assert!(s.contains("did not poison"), "{s}");
        assert!(s.contains("AS6"), "{s}");

        let snap = reg.snapshot();
        assert!(snap.counter("core.poisons_skipped").unwrap() >= 1);
        assert_eq!(snap.counter("core.poisons_applied"), Some(0));
        assert_eq!(snap.counter("core.repairs"), Some(0));
    }

    #[test]
    fn disjoint_sentinel_strategy_still_detects_repair() {
        let net = world_net();
        let mut world = World::new(&net);
        let mut cfg = LifeguardConfig::paper_defaults(AsId(0), production(), sentinel());
        cfg.sentinel = SentinelStrategy::Disjoint {
            sentinel: Prefix::from_octets(198, 51, 100, 0, 24),
        };
        cfg.targets = vec![AsId(5)];
        cfg.vantage_points = vec![AsId(7), AsId(8)];
        let mut lg = Lifeguard::new(cfg);
        lg.install(&mut world, Time::ZERO);
        let t = tick_minutes(&mut lg, &mut world, Time::from_secs(60), 5);
        let heal_at = t + 1_800_000;
        for covered in [
            production(),
            Prefix::from_octets(198, 51, 100, 0, 24),
            infra_prefix(AsId(0)),
        ] {
            world
                .dp
                .failures_mut()
                .add(Failure::silent_as_toward(AsId(1), covered).window(t, Some(heal_at)));
        }
        tick_minutes(&mut lg, &mut world, t, 10);
        assert!(lg.poisoning_active());
        tick_minutes(&mut lg, &mut world, heal_at + 60_000, 10);
        assert!(
            lg.events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::Unpoisoned { .. })),
            "events: {:?}",
            lg.events()
        );
    }
}
