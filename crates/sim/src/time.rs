//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in milliseconds since the scenario epoch.
///
/// All engines and the LIFEGUARD control loop share this clock; nothing in
/// the workspace reads wall-clock time, so every run is reproducible.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The scenario epoch.
    pub const ZERO: Time = Time(0);

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1000)
    }

    /// Construct from minutes.
    pub fn from_mins(m: u64) -> Time {
        Time(m * 60_000)
    }

    /// Milliseconds since epoch.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference in milliseconds.
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, ms: u64) -> Time {
        Time(self.0 + ms)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl Sub for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1000;
        write!(
            f,
            "{:02}:{:02}:{:02}",
            total_s / 3600,
            (total_s / 60) % 60,
            total_s % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Time::from_secs(90).millis(), 90_000);
        assert_eq!(Time::from_mins(2), Time::from_secs(120));
        assert_eq!(Time::from_secs(90).as_secs(), 90);
        assert_eq!(Time(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(10) + 500;
        assert_eq!(t.millis(), 10_500);
        assert_eq!(t - Time::from_secs(10), 500);
        assert_eq!(Time::ZERO - t, 0, "saturating");
        assert_eq!(t.since(Time::from_secs(10)), 500);
    }

    #[test]
    fn display_hms() {
        assert_eq!(Time::from_secs(3723).to_string(), "01:02:03");
    }
}
