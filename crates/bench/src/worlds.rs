//! Shared experiment environments.

use lg_asmap::{AsGraph, AsId, GraphBuilder, TopologyConfig};
use lg_bgp::Prefix;
use lg_sim::Network;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The standard production prefix used across experiments (the deployment's
/// 184.164.224.0/19 sliced into a /20 production + /19 sentinel).
pub fn production_prefix() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

/// The covering sentinel prefix.
pub fn sentinel_prefix() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 19)
}

/// A BGP-Mux-style deployment: a generated Internet with a fresh origin AS
/// attached to `n_providers` transit providers in different regions of the
/// hierarchy, plus a population of collector-peer ASes whose routes the
/// experiments observe.
pub struct MuxWorld {
    /// The network (generated topology + the origin AS).
    pub net: Network,
    /// The origin (LIFEGUARD) AS.
    pub origin: AsId,
    /// Its providers (the "mux" attachment points).
    pub providers: Vec<AsId>,
    /// Route-collector peer ASes (observers).
    pub collector_peers: Vec<AsId>,
}

/// Attach a new origin with `n_providers` providers drawn from distinct
/// transit ASes of the generated graph, spreading attachments across the
/// provider pool for path disjointness (as the five university muxes were).
pub fn mux_world(cfg: &TopologyConfig, n_providers: usize, observers: usize) -> MuxWorld {
    let graph = cfg.generate();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9);
    // Provider candidates: tier-2/3 transit ASes, highest degree first so
    // attachments resemble real university upstreams.
    let mut transit: Vec<AsId> = graph
        .transit_ases()
        .into_iter()
        .filter(|a| graph.tier(*a) >= 2)
        .collect();
    transit.sort_by_key(|a| std::cmp::Reverse(graph.degree(*a)));
    assert!(transit.len() >= n_providers, "not enough transit ASes");
    // Spread picks across the ranked list.
    let stride = (transit.len() / n_providers).max(1);
    let providers: Vec<AsId> = (0..n_providers)
        .map(|i| transit[(i * stride) % transit.len()])
        .collect();

    let mut b = GraphBuilder::from_graph(&graph);
    let origin = b.add_as();
    b.set_tier(origin, 4);
    for p in &providers {
        b.provider_customer(*p, origin);
    }
    let graph = b.build();

    // Route-collector peers on the real Internet are mostly transit ISPs
    // with a sprinkling of edge networks; mirror that mix.
    let mut transit_peers: Vec<AsId> = graph
        .transit_ases()
        .into_iter()
        .filter(|a| graph.tier(*a) >= 2 && !providers.contains(a))
        .collect();
    transit_peers.shuffle(&mut rng);
    let mut stubs: Vec<AsId> = graph
        .ases()
        .filter(|a| graph.is_stub(*a) && *a != origin)
        .collect();
    stubs.shuffle(&mut rng);
    let mut collector_peers: Vec<AsId> = Vec::with_capacity(observers);
    collector_peers.extend(transit_peers.into_iter().take(observers * 2 / 3));
    collector_peers.extend(stubs.into_iter().take(observers - collector_peers.len()));

    MuxWorld {
        net: Network::new(graph),
        origin,
        providers,
        collector_peers,
    }
}

/// A PlanetLab-like measurement mesh: a generated Internet plus a set of
/// edge "sites" used as vantage points and targets.
pub struct MeshWorld {
    /// The network.
    pub net: Network,
    /// Site ASes (multihomed stubs, shuffled deterministically).
    pub sites: Vec<AsId>,
}

/// Build a mesh world with up to `n_sites` sites.
pub fn mesh_world(cfg: &TopologyConfig, n_sites: usize) -> MeshWorld {
    let graph: AsGraph = cfg.generate();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x51F3_11AA);
    let mut sites: Vec<AsId> = graph
        .ases()
        .filter(|a| graph.is_stub(*a) && graph.providers(*a).len() >= 2)
        .collect();
    sites.shuffle(&mut rng);
    sites.truncate(n_sites);
    MeshWorld {
        net: Network::new(graph),
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_world_attaches_origin() {
        let w = mux_world(&TopologyConfig::small(5), 3, 10);
        assert_eq!(w.providers.len(), 3);
        assert_eq!(w.net.graph().providers(w.origin).len(), 3);
        assert!(w.net.graph().is_stub(w.origin));
        assert_eq!(w.collector_peers.len(), 10);
        assert!(!w.collector_peers.contains(&w.origin));
        // Providers are distinct transit ASes.
        let mut p = w.providers.clone();
        p.dedup();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn mesh_world_sites_are_multihomed_stubs() {
        let w = mesh_world(&TopologyConfig::small(6), 8);
        assert_eq!(w.sites.len(), 8);
        for s in &w.sites {
            assert!(w.net.graph().is_stub(*s));
            assert!(w.net.graph().providers(*s).len() >= 2);
        }
    }

    #[test]
    fn worlds_are_deterministic() {
        let a = mux_world(&TopologyConfig::small(5), 3, 10);
        let b = mux_world(&TopologyConfig::small(5), 3, 10);
        assert_eq!(a.providers, b.providers);
        assert_eq!(a.collector_peers, b.collector_peers);
    }
}
