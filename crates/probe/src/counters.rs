//! Probe accounting (§5.4 scalability numbers are probe budgets).

/// Running counts of probe packets sent, by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Plain echo requests.
    pub pings: u64,
    /// Spoofed echo requests.
    pub spoofed_pings: u64,
    /// Traceroute probe packets (one per hop per attempt).
    pub traceroute_probes: u64,
    /// IP-option (record-route / timestamp) probes used by reverse
    /// traceroute.
    pub option_probes: u64,
}

impl ProbeCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total probe packets of all kinds.
    pub fn total(&self) -> u64 {
        self.pings + self.spoofed_pings + self.traceroute_probes + self.option_probes
    }

    /// Difference since an earlier snapshot. Saturating: if counters were
    /// reset between snapshots (`earlier` ahead of `self`), the delta
    /// clamps to zero instead of underflowing.
    pub fn since(&self, earlier: &ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            pings: self.pings.saturating_sub(earlier.pings),
            spoofed_pings: self.spoofed_pings.saturating_sub(earlier.spoofed_pings),
            traceroute_probes: self
                .traceroute_probes
                .saturating_sub(earlier.traceroute_probes),
            option_probes: self.option_probes.saturating_sub(earlier.option_probes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_deltas() {
        let a = ProbeCounters {
            pings: 10,
            spoofed_pings: 2,
            traceroute_probes: 30,
            option_probes: 5,
        };
        assert_eq!(a.total(), 47);
        let b = ProbeCounters {
            pings: 15,
            spoofed_pings: 2,
            traceroute_probes: 40,
            option_probes: 15,
        };
        let d = b.since(&a);
        assert_eq!(d.pings, 5);
        assert_eq!(d.traceroute_probes, 10);
        assert_eq!(d.option_probes, 10);
        assert_eq!(d.total(), 25);
    }

    #[test]
    fn since_saturates_after_reset() {
        // Regression: `since` used unchecked subtraction and panicked in
        // debug builds when the prober's counters were reset (a fresh
        // `Prober`) between snapshots.
        let before = ProbeCounters {
            pings: 10,
            spoofed_pings: 3,
            traceroute_probes: 7,
            option_probes: 35,
        };
        let after_reset = ProbeCounters {
            pings: 2,
            spoofed_pings: 0,
            traceroute_probes: 9,
            option_probes: 0,
        };
        let d = after_reset.since(&before);
        assert_eq!(
            d,
            ProbeCounters {
                pings: 0,
                spoofed_pings: 0,
                traceroute_probes: 2,
                option_probes: 0,
            }
        );
    }
}
