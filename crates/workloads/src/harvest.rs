//! Poison-target harvesting (§5's experimental methodology).
//!
//! "To obtain ASes to poison, we announced a prefix and harvested all ASes
//! on BGP paths towards the prefix from route collectors. We excluded all
//! Tier-1 networks, as well as Cogent, as it is Georgia Tech's main
//! provider."

use lg_asmap::{AsGraph, AsId};
use lg_sim::RouteTable;

/// Harvest candidate poison targets from a converged route table: every
/// transit AS appearing on the selected paths of `observers` (route
/// collector peers), excluding
///
/// * the origin itself,
/// * tier-1 networks (`graph.tier() == 1`),
/// * the explicit `excluded` list (e.g. the origin's main provider),
/// * stub ASes (poisoning is for transit networks; the paper never needs to
///   poison stubs).
pub fn harvest_poison_targets(
    graph: &AsGraph,
    table: &RouteTable,
    observers: &[AsId],
    excluded: &[AsId],
) -> Vec<AsId> {
    let mut out: Vec<AsId> = Vec::new();
    for &obs in observers {
        let Some(path) = table.as_path(obs) else {
            continue;
        };
        for a in path {
            if a == table.origin
                || graph.tier(a) == 1
                || excluded.contains(&a)
                || graph.is_stub(a)
                || out.contains(&a)
            {
                continue;
            }
            out.push(a);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_asmap::GraphBuilder;
    use lg_bgp::Prefix;
    use lg_sim::{compute_routes, AnnouncementSpec, Network};

    #[test]
    fn harvest_excludes_tier1_stubs_and_origin() {
        // tier1(0) over transit 1 and 2; origin 3 under 1; observer stub 4
        // under 2. Observer path: 4-2-0-1-3.
        let mut g = GraphBuilder::with_ases(5);
        g.provider_customer(AsId(0), AsId(1));
        g.provider_customer(AsId(0), AsId(2));
        g.provider_customer(AsId(1), AsId(3));
        g.provider_customer(AsId(2), AsId(4));
        g.set_tier(AsId(0), 1);
        let net = Network::new(g.build());
        let spec = AnnouncementSpec::plain(&net, Prefix::from_octets(10, 0, 0, 0, 16), AsId(3));
        let table = compute_routes(&net, &spec);
        let targets = harvest_poison_targets(net.graph(), &table, &[AsId(4)], &[]);
        // Path 4 ← 2 ← 0 ← 1 ← 3: transit ASes are 2, 0 (tier-1,
        // excluded), 1. Stub 4 and origin 3 excluded.
        assert_eq!(targets, vec![AsId(1), AsId(2)]);
        // Explicit exclusion works (the "Cogent rule").
        let targets2 = harvest_poison_targets(net.graph(), &table, &[AsId(4)], &[AsId(1)]);
        assert_eq!(targets2, vec![AsId(2)]);
    }

    #[test]
    fn observers_without_routes_are_skipped() {
        let mut g = GraphBuilder::with_ases(3);
        g.provider_customer(AsId(0), AsId(1));
        // AS2 disconnected.
        let net = Network::new(g.build());
        let spec = AnnouncementSpec::plain(&net, Prefix::from_octets(10, 0, 0, 0, 16), AsId(1));
        let table = compute_routes(&net, &spec);
        let targets = harvest_poison_targets(net.graph(), &table, &[AsId(2)], &[]);
        assert!(targets.is_empty());
    }
}
