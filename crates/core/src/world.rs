//! The scenario world: everything LIFEGUARD interacts with, bundled.

use lg_atlas::{Atlas, RefreshScheduler, ResponsivenessDb};
use lg_probe::Prober;
use lg_sim::dataplane::DataPlane;
use lg_sim::{Network, Time};

/// A simulated deployment environment: the data plane (control +
/// forwarding), the prober, and the measurement state LIFEGUARD maintains.
pub struct World<'n> {
    /// Control and data plane.
    pub dp: DataPlane<'n>,
    /// Measurement issuer.
    pub prober: Prober,
    /// Background path atlas.
    pub atlas: Atlas,
    /// Learned responsiveness.
    pub resp: ResponsivenessDb,
}

impl<'n> World<'n> {
    /// Fresh world over `net` with infra prefixes announced for every AS.
    pub fn new(net: &'n Network) -> Self {
        let mut dp = DataPlane::new(net);
        dp.ensure_infra_all();
        World {
            dp,
            prober: Prober::with_defaults(),
            atlas: Atlas::default(),
            resp: ResponsivenessDb::new(),
        }
    }

    /// Warm the atlas for vantage `src` against `dsts` (plus responsiveness
    /// history for every AS), as a healthy monitoring period would.
    pub fn warm_atlas(&mut self, src: lg_asmap::AsId, dsts: &[lg_asmap::AsId], now: Time) {
        let mut pairs: Vec<_> = dsts.iter().map(|d| (src, *d)).collect();
        for a in self.dp.network().graph().ases() {
            if a != src && !dsts.contains(&a) {
                pairs.push((src, a));
            }
        }
        let mut sched = RefreshScheduler::new(pairs, 60_000);
        sched.refresh_due(
            &self.dp,
            &mut self.prober,
            &mut self.atlas,
            &mut self.resp,
            now,
        );
    }
}
