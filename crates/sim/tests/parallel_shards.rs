//! Shard/barrier stress for the parallel window engine.
//!
//! Two hazards the conservative-window design must survive, pinned here
//! against the sequential oracle (`workers = 1`) with thread spawning
//! forced on (`parallel_spawn_min: 0`) so every window really crosses
//! thread boundaries — which also makes this the target of the tsan CI
//! gate:
//!
//! 1. **MRAI expirations exactly on window boundaries.** The planner
//!    clamps a window's end to the earliest armed MRAI deadline, so the
//!    next window *starts* exactly at a deferred flush — the flush's
//!    emissions must still land in global `(time, seq)` order even when
//!    the flushing node and the receiving peer sit in different shards.
//!    `dynamic.window_mrai_capped` (asserted via an isolated registry)
//!    proves the clamp actually fired; the log comparison proves it was
//!    harmless.
//!
//! 2. **Fail/restore crossing a barrier.** Topology mutations happen
//!    between `run_until` calls, i.e. between windows; a link that dies
//!    mid-convergence with traffic in flight across the shard boundary
//!    must not reorder or drop anything relative to the sequential
//!    engine.
//!
//! (No miri/loom in this toolchain; like `shared_cache_concurrency.rs`,
//! real OS threads + exact oracles are the stand-in.)

use lg_asmap::{AsId, GraphBuilder, TopologyConfig};
use lg_bgp::Prefix;
use lg_sim::{AnnouncementSpec, DynamicSim, DynamicSimConfig, Network, OutQueue, Time};
use lg_telemetry::Registry;

fn pfx() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

/// A 12-AS provider chain: AsId(0) is the stub origin at the bottom,
/// AsId(11) the top transit. Every announcement wave walks the whole
/// chain, so with `workers >= 2` (chunked shards over node index) the
/// wave crosses the shard boundary on every hop past the chunk edge.
fn chain(n: u32) -> Network {
    let mut g = GraphBuilder::with_ases(n as usize);
    for i in 0..n - 1 {
        g.provider_customer(AsId(i + 1), AsId(i));
    }
    Network::new(g.build())
}

/// The observable end state of one run, for exact comparison.
fn observe(sim: &DynamicSim, net: &Network, quiesce_at: Time) -> impl PartialEq + std::fmt::Debug {
    let locs: Vec<_> = net
        .graph()
        .ases()
        .map(|a| {
            (
                a,
                sim.loc_route(a, pfx())
                    .map(|r| (r.learned_from, r.path.hops().to_vec())),
            )
        })
        .collect();
    (
        quiesce_at,
        sim.now(),
        sim.quiescent(),
        sim.update_log().to_vec(),
        locs,
    )
}

/// A hub star: AsId(0) is the hub, provider of stubs AsId(1)..AsId(n-1);
/// AsId(1) originates. When the hub's selection changes it floods one
/// UPDATE per spoke *at the same instant*, arming one jittered MRAI
/// deadline per (hub, spoke) pair — n-2 deadlines packed into the 25% of
/// the base interval that jitter spans. With the lookahead window only
/// one link latency wide, pigeonhole guarantees some deadline falls
/// strictly inside another's window, forcing the planner's MRAI cap; and
/// with chunked shards the hub (shard 0) flushes to spokes in every
/// other shard.
fn star(n: u32) -> Network {
    let mut g = GraphBuilder::with_ases(n as usize);
    for i in 1..n {
        g.provider_customer(AsId(0), AsId(i));
    }
    Network::new(g.build())
}

/// Drive the boundary schedule: announce, let the hub flood inside every
/// (hub, spoke) MRAI shadow, then re-announce with different content so
/// the hub defers a flush to every spoke — the deferred deadlines become
/// window caps. Returns the observation plus the run's isolated registry.
fn run_boundary(net: &Network, workers: usize) -> (impl PartialEq + std::fmt::Debug, Registry) {
    let reg = Registry::new();
    let cfg = DynamicSimConfig {
        // Short base interval: the 25% jitter span (~25 ms) packs the
        // per-spoke deadlines tighter than one lookahead window (~11 ms),
        // so caps are guaranteed, not probabilistic. Deterministic: the
        // jitter is a pure function of (node, peer).
        mrai_ms: 100,
        mrai_jitter: true,
        out_queue: OutQueue::Ring,
        workers,
        parallel_spawn_min: 0,
        ..DynamicSimConfig::default()
    };
    let mut sim = DynamicSim::with_registry(net, cfg, &reg);
    sim.record_updates(true);
    sim.announce(&AnnouncementSpec::plain(net, pfx(), AsId(1)));
    // Past the hub's flood (~one link latency) but inside every spoke
    // shadow (earliest deadline is at latency + 75% of 100 ms).
    let t = sim.now() + 30;
    sim.run_until(t);
    sim.announce(&AnnouncementSpec::prepended(net, pfx(), AsId(1), 3));
    let q = sim.run_until_quiescent(sim.now() + Time::from_mins(30).millis());
    assert!(sim.quiescent(), "boundary schedule must quiesce");
    (observe(&sim, net, q), reg)
}

#[test]
fn mrai_expiry_on_window_boundary_matches_oracle() {
    let net = star(14);
    let (oracle, oracle_reg) = run_boundary(&net, 1);
    assert_eq!(
        oracle_reg.counter("dynamic.windows").get(),
        0,
        "sequential run must not take the window path"
    );
    for workers in [2usize, 4, 8] {
        let (got, reg) = run_boundary(&net, workers);
        assert!(
            reg.counter("dynamic.windows").get() > 0,
            "workers={workers}: parallel run never opened a window"
        );
        assert!(
            reg.counter("dynamic.window_mrai_capped").get() > 0,
            "workers={workers}: no window was capped by an armed MRAI deadline — \
             the schedule no longer exercises the boundary case"
        );
        assert_eq!(
            got, oracle,
            "workers={workers}: boundary run diverges from the sequential oracle"
        );
    }
}

/// Drive the barrier schedule on a generated topology: announce, stop
/// mid-convergence with updates in flight, fail a link that crosses the
/// shard boundary, let the repair wave run, restore it, quiesce.
fn run_barrier(
    net: &Network,
    origin: AsId,
    link: (AsId, AsId),
    out_queue: OutQueue,
    workers: usize,
) -> impl PartialEq + std::fmt::Debug {
    let cfg = DynamicSimConfig {
        mrai_ms: 15_000,
        mrai_jitter: true,
        out_queue,
        workers,
        parallel_spawn_min: 0,
        ..DynamicSimConfig::default()
    };
    let mut sim = DynamicSim::new(net, cfg);
    sim.record_updates(true);
    sim.announce(&AnnouncementSpec::plain(net, pfx(), origin));
    // Stop mid-wave: far less than full-propagation time, so UPDATEs are
    // still in flight across the shard boundary when the link dies.
    let t = sim.now() + 40;
    sim.run_until(t);
    sim.fail_link(link.0, link.1);
    let t = sim.now() + 500;
    sim.run_until(t);
    sim.restore_link(link.0, link.1);
    let q = sim.run_until_quiescent(sim.now() + Time::from_mins(60).millis());
    assert!(sim.quiescent(), "barrier schedule must quiesce");
    observe(&sim, net, q)
}

#[test]
fn fail_restore_across_barrier_matches_oracle() {
    for seed in [3u64, 19] {
        let net = Network::new(TopologyConfig::small(seed).generate());
        let origin = net
            .graph()
            .ases()
            .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
            .expect("topology has multihomed stubs");
        let n = net.graph().ases().count();
        for workers in [2usize, 4, 8] {
            // Pick a link whose endpoints land in different shards under
            // this worker count (chunked partition over node index).
            let chunk = n.div_ceil(workers).max(1);
            let mut cross = None;
            'outer: for a in net.graph().ases() {
                for (b, _) in net.graph().neighbors(a) {
                    if a.0 < b.0 && (a.0 as usize) / chunk != (b.0 as usize) / chunk {
                        cross = Some((a, *b));
                        break 'outer;
                    }
                }
            }
            let link = cross.expect("small topology spans shard boundary");
            for out_queue in [OutQueue::Ring, OutQueue::Reference] {
                let oracle = run_barrier(&net, origin, link, out_queue, 1);
                let got = run_barrier(&net, origin, link, out_queue, workers);
                assert_eq!(
                    got, oracle,
                    "seed {seed} workers {workers} {out_queue:?}: \
                     fail/restore across the barrier diverges from the oracle"
                );
            }
        }
    }
}

/// Per-peer update times never go backwards in the parallel engine's log
/// — the global `(time, seq)` merge is what the windows must preserve.
#[test]
fn parallel_log_times_are_monotone() {
    let net = chain(16);
    let cfg = DynamicSimConfig {
        workers: 4,
        parallel_spawn_min: 0,
        ..DynamicSimConfig::default()
    };
    let mut sim = DynamicSim::new(&net, cfg);
    sim.record_updates(true);
    sim.announce(&AnnouncementSpec::plain(&net, pfx(), AsId(0)));
    let t = sim.now() + 1_000;
    sim.run_until(t);
    sim.announce(&AnnouncementSpec::poisoned(
        &net,
        pfx(),
        AsId(0),
        &[AsId(5)],
    ));
    sim.run_until_quiescent(sim.now() + Time::from_mins(30).millis());
    assert!(sim.quiescent());
    let log = sim.update_log();
    assert!(!log.is_empty(), "schedule produced no updates");
    for w in log.windows(2) {
        assert!(
            w[0].at <= w[1].at,
            "log times regress: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}
