//! §5.4 Scalability: atlas refresh economics and isolation cost.
//!
//! The paper reports the path atlas refreshing 225 reverse paths per minute
//! on average (502 peak) at an amortized ~10 IP-option probes per path
//! (versus 35 from scratch) plus ~2 forward traceroutes, and isolation
//! completing in ~140 s with ~280 probes. The refresh side is reproduced by
//! running the scheduler over a monitored mesh and accounting probes; the
//! isolation side comes from the §5.3 study.

use crate::report::Table;
use crate::worlds::{mesh_world, MeshWorld};
use lg_asmap::TopologyConfig;
use lg_atlas::{Atlas, RefreshScheduler, RefreshStats, ResponsivenessDb};
use lg_probe::Prober;
use lg_sim::dataplane::DataPlane;
use lg_sim::Time;

/// Outcome of the refresh study.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshEconomics {
    /// Monitored (vantage, destination) pairs.
    pub pairs: usize,
    /// Refresh rounds executed.
    pub rounds: usize,
    /// Total paths refreshed.
    pub paths_refreshed: u64,
    /// Cumulative refresh statistics.
    pub stats: RefreshStats,
    /// Amortized option probes per reverse path in the steady state
    /// (rounds after the first).
    pub steady_state_probes_per_path: f64,
    /// Option probes per reverse path in the cold first round.
    pub cold_probes_per_path: f64,
}

/// Configuration.
#[derive(Clone, Debug)]
pub struct RefreshConfig {
    /// Topology.
    pub topo: TopologyConfig,
    /// Vantage sites.
    pub vantages: usize,
    /// Destinations monitored per vantage.
    pub destinations: usize,
    /// Refresh rounds.
    pub rounds: usize,
}

impl RefreshConfig {
    /// Bench-sized.
    pub fn standard(seed: u64) -> Self {
        RefreshConfig {
            topo: TopologyConfig::medium(seed),
            vantages: 10,
            destinations: 60,
            rounds: 8,
        }
    }

    /// Test-sized.
    pub fn tiny(seed: u64) -> Self {
        RefreshConfig {
            topo: TopologyConfig::small(seed),
            vantages: 4,
            destinations: 10,
            rounds: 4,
        }
    }
}

/// Run the refresh study.
pub fn run_refresh(cfg: &RefreshConfig) -> RefreshEconomics {
    let MeshWorld { net, sites } = mesh_world(&cfg.topo, cfg.vantages);
    let mut dp = DataPlane::new(&net);
    dp.ensure_infra_all();
    let mut prober = Prober::with_defaults();
    let mut atlas = Atlas::default();
    let mut resp = ResponsivenessDb::new();

    // Each vantage monitors a slice of destinations spread over the graph.
    let all: Vec<_> = net.graph().ases().collect();
    let mut pairs = Vec::new();
    for (vi, v) in sites.iter().enumerate() {
        for di in 0..cfg.destinations {
            let d = all[(vi * 97 + di * 13) % all.len()];
            if d != *v {
                pairs.push((*v, d));
            }
        }
    }
    let n_pairs = pairs.len();
    let mut sched = RefreshScheduler::new(pairs, 60_000);

    let mut out = RefreshEconomics {
        pairs: n_pairs,
        rounds: cfg.rounds,
        ..RefreshEconomics::default()
    };
    let mut cold = RefreshStats::default();
    for round in 0..cfg.rounds {
        let t = Time(round as u64 * 60_000);
        out.paths_refreshed += sched.refresh_due(&dp, &mut prober, &mut atlas, &mut resp, t);
        if round == 0 {
            cold = sched.stats();
        }
    }
    out.stats = sched.stats();
    out.cold_probes_per_path = cold.option_probes_per_path();
    let steady_paths = out.stats.reverse_paths - cold.reverse_paths;
    let steady_probes = out.stats.option_probes - cold.option_probes;
    out.steady_state_probes_per_path = if steady_paths == 0 {
        0.0
    } else {
        steady_probes as f64 / steady_paths as f64
    };
    out
}

/// The §5.4 table (refresh side; isolation side comes from §5.3).
pub fn refresh_table(r: &RefreshEconomics) -> Table {
    let mut t = Table::new(
        "§5.4 Scalability: atlas refresh economics",
        &["metric", "paper", "measured"],
    );
    t.row(&[
        "monitored (vantage, destination) pairs".into(),
        "-".into(),
        r.pairs.to_string(),
    ]);
    t.row(&[
        "option probes per reverse path (steady state)".into(),
        "~10 (amortized)".into(),
        format!("{:.1}", r.steady_state_probes_per_path),
    ]);
    t.row(&[
        "option probes per reverse path (from scratch)".into(),
        "35".into(),
        format!("{:.1}", r.cold_probes_per_path),
    ]);
    t.row(&[
        "cache splices across converging paths".into(),
        "-".into(),
        r.stats.cache_hits.to_string(),
    ]);
    t.row(&[
        "traceroute probes per forward refresh".into(),
        "~2 traceroutes".into(),
        format!(
            "{:.1} probe pkts",
            if r.stats.forward_paths == 0 {
                0.0
            } else {
                r.stats.traceroute_probes as f64 / r.stats.forward_paths as f64
            }
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_cheaper_than_cold() {
        let r = run_refresh(&RefreshConfig::tiny(3));
        assert!(r.paths_refreshed > 0);
        assert!(
            r.steady_state_probes_per_path < r.cold_probes_per_path,
            "steady {} vs cold {}",
            r.steady_state_probes_per_path,
            r.cold_probes_per_path
        );
        // In the paper's band: well under the from-scratch cost.
        assert!(r.steady_state_probes_per_path < 15.0);
    }
}
