//! Declarative scenario files for the `lifeguard-sim` CLI.
//!
//! A scenario describes a topology, a LIFEGUARD deployment, and a timeline
//! of silent failures; [`run`] executes it and returns the system's event
//! log plus a reachability summary. Scenarios are plain JSON (see
//! `scenarios/*.json` for examples) so downstream users can script
//! experiments without writing Rust.

use crate::json::{self, Value};
use lg_asmap::{AsId, TopologyConfig, TopologyKind};
use lg_bgp::Prefix;
use lg_sim::dataplane::infra_prefix;
use lg_sim::failures::{Failure, NetElement};
use lg_sim::{Network, Time};
use lifeguard_core::{Event, Lifeguard, LifeguardConfig, World};

/// Topology selection.
#[derive(Clone, Debug)]
pub enum TopologySpec {
    /// ~50 ASes.
    Small {
        /// RNG seed.
        seed: u64,
    },
    /// ~1000 ASes.
    Medium {
        /// RNG seed.
        seed: u64,
    },
    /// ~10 000 ASes.
    Large {
        /// RNG seed.
        seed: u64,
    },
    /// Fully custom parameters.
    Custom {
        /// Tier-1 count.
        tier1: usize,
        /// Tier-2 count.
        tier2: usize,
        /// Tier-3 count.
        tier3: usize,
        /// Stub count.
        stubs: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Materialize the generator config.
    pub fn to_config(&self) -> TopologyConfig {
        match *self {
            TopologySpec::Small { seed } => TopologyConfig::small(seed),
            TopologySpec::Medium { seed } => TopologyConfig::medium(seed),
            TopologySpec::Large { seed } => TopologyConfig::large(seed),
            TopologySpec::Custom {
                tier1,
                tier2,
                tier3,
                stubs,
                seed,
            } => TopologyConfig {
                kind: TopologyKind::Hierarchical,
                tier1,
                tier2,
                tier3,
                stubs,
                ..TopologyConfig::small(seed)
            },
        }
    }
}

/// An AS id or "pick one automatically".
#[derive(Clone, Copy, Debug)]
pub enum AsPick {
    /// Explicit AS number.
    Explicit(u32),
    /// `"auto"`.
    Auto(AutoTag),
}

/// The literal string `"auto"`.
#[derive(Clone, Copy, Debug)]
pub enum AutoTag {
    /// Pick automatically.
    Auto,
}

/// Which destination prefix a failure affects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TowardSpec {
    /// The production prefix, the sentinel, and the origin's infra prefix —
    /// a full reverse-path failure toward the deployment.
    OriginPrefixes,
    /// A specific target AS's infra prefix (forward-path failure).
    Target,
    /// All traffic through the element.
    All,
}

/// One failure in the timeline.
#[derive(Clone, Debug)]
pub struct FailureSpec {
    /// The failed AS (`{"as": 7}`) or link (`{"link": [2, 4]}`).
    pub element: ElementSpec,
    /// Scope of affected destinations.
    pub toward: TowardSpec,
    /// Start minute.
    pub start_min: u64,
    /// End minute (omit for "until the end").
    pub end_min: Option<u64>,
}

/// Serialized failure element (flattened into the failure object as
/// `"as"`, `"link"`, or `"auto"`).
#[derive(Clone, Debug)]
pub enum ElementSpec {
    /// A whole AS.
    As(u32),
    /// An AS-AS link.
    Link(u32, u32),
    /// Resolved at run time: `{"auto": "reverse_transit"}` fails the first
    /// transit AS on the reverse path from the first target back to the
    /// origin — guaranteed to hit the monitored path.
    Auto(AutoElement),
}

/// Auto-resolved failure elements.
#[derive(Clone, Copy, Debug)]
pub enum AutoElement {
    /// First transit AS on the reverse path target → origin.
    ReverseTransit,
    /// First transit-to-transit link on the reverse path target → origin.
    ReverseLink,
}

/// A complete scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Topology to generate.
    pub topology: TopologySpec,
    /// LIFEGUARD's origin AS (`"auto"` picks a multihomed stub).
    pub origin: AsPick,
    /// Monitored destinations (`"auto"` entries pick distinct stubs).
    pub targets: Vec<AsPick>,
    /// Vantage points assisting isolation.
    pub vantage_points: Vec<AsPick>,
    /// Failure timeline.
    pub failures: Vec<FailureSpec>,
    /// Total simulated duration, minutes.
    pub duration_min: u64,
}

/// Result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The LIFEGUARD event log.
    pub events: Vec<Event>,
    /// The chosen origin.
    pub origin: AsId,
    /// The chosen targets.
    pub targets: Vec<AsId>,
    /// Per-target downtime in ms observed by an external monitor pinging
    /// every 30 s (ground-truth unavailability, detection lag included).
    pub downtime_ms: Vec<(AsId, u64)>,
}

impl RunOutcome {
    /// Render the event log as text lines.
    pub fn log_lines(&self) -> Vec<String> {
        self.events.iter().map(|e| e.to_string()).collect()
    }
}

/// Error type for scenario loading/solving.
#[derive(Debug)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn resolve_picks(
    net: &Network,
    origin: AsPick,
    picks: &[AsPick],
    taken: &mut Vec<AsId>,
) -> Result<(AsId, Vec<AsId>), ScenarioError> {
    let mut auto_pool: Vec<AsId> = net
        .graph()
        .ases()
        .filter(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .collect();
    let mut next_auto = move |taken: &mut Vec<AsId>| -> Result<AsId, ScenarioError> {
        // Spread picks across the pool deterministically.
        while !auto_pool.is_empty() {
            // Take from alternating ends for diversity.
            let a = if taken.len().is_multiple_of(2) {
                auto_pool.remove(0)
            } else {
                auto_pool.pop().unwrap()
            };
            if !taken.contains(&a) {
                taken.push(a);
                return Ok(a);
            }
        }
        Err(ScenarioError(
            "not enough multihomed stubs for auto picks".into(),
        ))
    };
    let origin = match origin {
        AsPick::Explicit(v) => {
            let a = AsId(v);
            taken.push(a);
            a
        }
        AsPick::Auto(_) => next_auto(taken)?,
    };
    let mut out = Vec::new();
    for p in picks {
        out.push(match p {
            AsPick::Explicit(v) => {
                let a = AsId(*v);
                taken.push(a);
                a
            }
            AsPick::Auto(_) => next_auto(taken)?,
        });
    }
    Ok((origin, out))
}

/// Execute a scenario.
pub fn run(scenario: &Scenario) -> Result<RunOutcome, ScenarioError> {
    let topo = scenario.topology.to_config();
    let net = Network::new(topo.generate());
    let mut taken = Vec::new();
    let (origin, targets) = resolve_picks(&net, scenario.origin, &scenario.targets, &mut taken)?;
    let (_, vps) = resolve_picks(
        &net,
        AsPick::Explicit(origin.0),
        &scenario.vantage_points,
        &mut taken,
    )?;
    if targets.is_empty() {
        return Err(ScenarioError("at least one target required".into()));
    }
    for a in targets.iter().chain(vps.iter()).chain([&origin]) {
        if a.index() >= net.len() {
            return Err(ScenarioError(format!("{a} is outside the topology")));
        }
    }

    let production = Prefix::from_octets(184, 164, 224, 0, 20);
    let sentinel = Prefix::from_octets(184, 164, 224, 0, 19);
    let mut cfg = LifeguardConfig::paper_defaults(origin, production, sentinel);
    cfg.targets = targets.clone();
    cfg.vantage_points = vps;

    let mut world = World::new(&net);
    let mut lifeguard = Lifeguard::new(cfg);
    lifeguard.install(&mut world, Time::ZERO);

    // Install the failure timeline.
    let reverse_hops = world
        .dp
        .walk(Time::ZERO, targets[0], production.nth_addr(1))
        .as_hops();
    let reverse_transit = reverse_hops.get(1).copied();
    let reverse_link = (reverse_hops.len() >= 4).then(|| (reverse_hops[1], reverse_hops[2]));
    for f in &scenario.failures {
        let from = Time::from_mins(f.start_min);
        let until = f.end_min.map(Time::from_mins);
        let towards: Vec<Option<Prefix>> = match f.toward {
            TowardSpec::All => vec![None],
            TowardSpec::OriginPrefixes => {
                vec![Some(production), Some(sentinel), Some(infra_prefix(origin))]
            }
            TowardSpec::Target => targets.iter().map(|t| Some(infra_prefix(*t))).collect(),
        };
        for toward in towards {
            let base = match f.element {
                ElementSpec::As(a) => Failure::silent_as(AsId(a)),
                ElementSpec::Link(a, b) => Failure::silent_link(AsId(a), AsId(b)),
                ElementSpec::Auto(AutoElement::ReverseTransit) => {
                    Failure::silent_as(reverse_transit.ok_or_else(|| {
                        ScenarioError("no reverse path to resolve auto element".into())
                    })?)
                }
                ElementSpec::Auto(AutoElement::ReverseLink) => {
                    let (a, b) = reverse_link.ok_or_else(|| {
                        ScenarioError("reverse path too short for a transit link".into())
                    })?;
                    Failure::silent_link(a, b)
                }
            };
            let mut fail = base.window(from, until);
            fail.toward = toward;
            if matches!(fail.element, NetElement::As(a) if a == origin) {
                return Err(ScenarioError("cannot fail the origin itself".into()));
            }
            world.dp.failures_mut().add(fail);
        }
    }

    // Run the clock: LIFEGUARD ticks every ping interval; an external
    // ground-truth monitor accounts downtime.
    let interval = lifeguard.config().ping_interval_ms;
    let mut downtime: Vec<(AsId, u64)> = targets.iter().map(|t| (*t, 0)).collect();
    let mut now = Time::from_secs(60);
    let end = Time::from_mins(scenario.duration_min);
    while now <= end {
        lifeguard.tick(&mut world, now);
        lg_telemetry::sample_global_timeseries(now.millis());
        for (t, d) in downtime.iter_mut() {
            let (fwd, rev) = world.dp.round_trip(
                now,
                origin,
                production.nth_addr(1),
                infra_prefix(*t).nth_addr(1),
            );
            let up = fwd.outcome.delivered() && rev.is_some_and(|r| r.outcome.delivered());
            if !up {
                *d += interval;
            }
        }
        now += interval;
    }

    Ok(RunOutcome {
        events: lifeguard.events().to_vec(),
        origin,
        targets,
        downtime_ms: downtime,
    })
}

fn err(msg: impl Into<String>) -> ScenarioError {
    ScenarioError(msg.into())
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ScenarioError> {
    v.get(key)
        .ok_or_else(|| err(format!("missing field {key:?}")))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, ScenarioError> {
    v.as_u64()
        .ok_or_else(|| err(format!("{what} must be a non-negative integer")))
}

fn as_u32(v: &Value, what: &str) -> Result<u32, ScenarioError> {
    let n = as_u64(v, what)?;
    u32::try_from(n).map_err(|_| err(format!("{what} does not fit in 32 bits")))
}

fn as_usize(v: &Value, what: &str) -> Result<usize, ScenarioError> {
    Ok(as_u64(v, what)? as usize)
}

fn parse_topology(v: &Value) -> Result<TopologySpec, ScenarioError> {
    let fields = v
        .as_obj()
        .ok_or_else(|| err("topology must be an object"))?;
    let (tag, body) = match fields {
        [(tag, body)] => (tag.as_str(), body),
        _ => return Err(err("topology must have exactly one variant key")),
    };
    match tag {
        "small" => Ok(TopologySpec::Small {
            seed: as_u64(field(body, "seed")?, "seed")?,
        }),
        "medium" => Ok(TopologySpec::Medium {
            seed: as_u64(field(body, "seed")?, "seed")?,
        }),
        "large" => Ok(TopologySpec::Large {
            seed: as_u64(field(body, "seed")?, "seed")?,
        }),
        "custom" => Ok(TopologySpec::Custom {
            tier1: as_usize(field(body, "tier1")?, "tier1")?,
            tier2: as_usize(field(body, "tier2")?, "tier2")?,
            tier3: as_usize(field(body, "tier3")?, "tier3")?,
            stubs: as_usize(field(body, "stubs")?, "stubs")?,
            seed: as_u64(field(body, "seed")?, "seed")?,
        }),
        other => Err(err(format!("unknown topology {other:?}"))),
    }
}

fn parse_pick(v: &Value, what: &str) -> Result<AsPick, ScenarioError> {
    match v {
        Value::Str(s) if s == "auto" => Ok(AsPick::Auto(AutoTag::Auto)),
        Value::Num(_) => Ok(AsPick::Explicit(as_u32(v, what)?)),
        _ => Err(err(format!("{what} must be an AS number or \"auto\""))),
    }
}

fn parse_picks(v: &Value, what: &str) -> Result<Vec<AsPick>, ScenarioError> {
    v.as_arr()
        .ok_or_else(|| err(format!("{what} must be an array")))?
        .iter()
        .map(|p| parse_pick(p, what))
        .collect()
}

fn parse_failure(v: &Value) -> Result<FailureSpec, ScenarioError> {
    let element = if let Some(a) = v.get("as") {
        ElementSpec::As(as_u32(a, "as")?)
    } else if let Some(l) = v.get("link") {
        match l.as_arr() {
            Some([a, b]) => ElementSpec::Link(as_u32(a, "link")?, as_u32(b, "link")?),
            _ => return Err(err("link must be a two-element array")),
        }
    } else if let Some(a) = v.get("auto") {
        match a.as_str() {
            Some("reverse_transit") => ElementSpec::Auto(AutoElement::ReverseTransit),
            Some("reverse_link") => ElementSpec::Auto(AutoElement::ReverseLink),
            _ => return Err(err("auto element must be reverse_transit or reverse_link")),
        }
    } else {
        return Err(err("failure needs an \"as\", \"link\", or \"auto\" key"));
    };
    let toward = match field(v, "toward")?.as_str() {
        Some("origin_prefixes") => TowardSpec::OriginPrefixes,
        Some("target") => TowardSpec::Target,
        Some("all") => TowardSpec::All,
        _ => return Err(err("toward must be origin_prefixes, target, or all")),
    };
    let end_min = match v.get("end_min") {
        None | Some(Value::Null) => None,
        Some(e) => Some(as_u64(e, "end_min")?),
    };
    Ok(FailureSpec {
        element,
        toward,
        start_min: as_u64(field(v, "start_min")?, "start_min")?,
        end_min,
    })
}

/// Parse a scenario from JSON.
pub fn parse(json: &str) -> Result<Scenario, ScenarioError> {
    let v = json::parse(json).map_err(err)?;
    let failures = field(&v, "failures")?
        .as_arr()
        .ok_or_else(|| err("failures must be an array"))?
        .iter()
        .map(parse_failure)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Scenario {
        topology: parse_topology(field(&v, "topology")?)?,
        origin: parse_pick(field(&v, "origin")?, "origin")?,
        targets: parse_picks(field(&v, "targets")?, "targets")?,
        vantage_points: parse_picks(field(&v, "vantage_points")?, "vantage_points")?,
        failures,
        duration_min: as_u64(field(&v, "duration_min")?, "duration_min")?,
    })
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn pick_value(p: AsPick) -> Value {
    match p {
        AsPick::Explicit(v) => num(v as u64),
        AsPick::Auto(_) => Value::Str("auto".into()),
    }
}

/// Serialize a scenario back to the JSON format [`parse`] accepts.
pub fn to_json(sc: &Scenario) -> String {
    let topology = match sc.topology {
        TopologySpec::Small { seed } => Value::Obj(vec![(
            "small".into(),
            Value::Obj(vec![("seed".into(), num(seed))]),
        )]),
        TopologySpec::Medium { seed } => Value::Obj(vec![(
            "medium".into(),
            Value::Obj(vec![("seed".into(), num(seed))]),
        )]),
        TopologySpec::Large { seed } => Value::Obj(vec![(
            "large".into(),
            Value::Obj(vec![("seed".into(), num(seed))]),
        )]),
        TopologySpec::Custom {
            tier1,
            tier2,
            tier3,
            stubs,
            seed,
        } => Value::Obj(vec![(
            "custom".into(),
            Value::Obj(vec![
                ("tier1".into(), num(tier1 as u64)),
                ("tier2".into(), num(tier2 as u64)),
                ("tier3".into(), num(tier3 as u64)),
                ("stubs".into(), num(stubs as u64)),
                ("seed".into(), num(seed)),
            ]),
        )]),
    };
    let failures: Vec<Value> = sc
        .failures
        .iter()
        .map(|f| {
            let mut fields = vec![match f.element {
                ElementSpec::As(a) => ("as".into(), num(a as u64)),
                ElementSpec::Link(a, b) => (
                    "link".into(),
                    Value::Arr(vec![num(a as u64), num(b as u64)]),
                ),
                ElementSpec::Auto(AutoElement::ReverseTransit) => {
                    ("auto".into(), Value::Str("reverse_transit".into()))
                }
                ElementSpec::Auto(AutoElement::ReverseLink) => {
                    ("auto".into(), Value::Str("reverse_link".into()))
                }
            }];
            let toward = match f.toward {
                TowardSpec::OriginPrefixes => "origin_prefixes",
                TowardSpec::Target => "target",
                TowardSpec::All => "all",
            };
            fields.push(("toward".into(), Value::Str(toward.into())));
            fields.push(("start_min".into(), num(f.start_min)));
            if let Some(e) = f.end_min {
                fields.push(("end_min".into(), num(e)));
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        ("topology".into(), topology),
        ("origin".into(), pick_value(sc.origin)),
        (
            "targets".into(),
            Value::Arr(sc.targets.iter().copied().map(pick_value).collect()),
        ),
        (
            "vantage_points".into(),
            Value::Arr(sc.vantage_points.iter().copied().map(pick_value).collect()),
        ),
        ("failures".into(), Value::Arr(failures)),
        ("duration_min".into(), num(sc.duration_min)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "topology": {"small": {"seed": 7}},
        "origin": "auto",
        "targets": ["auto"],
        "vantage_points": ["auto", "auto"],
        "failures": [
            {"as": 15, "toward": "origin_prefixes", "start_min": 10, "end_min": 70}
        ],
        "duration_min": 90
    }"#;

    #[test]
    fn parse_roundtrip() {
        let sc = parse(EXAMPLE).unwrap();
        assert_eq!(sc.duration_min, 90);
        assert_eq!(sc.failures.len(), 1);
        assert!(matches!(sc.failures[0].element, ElementSpec::As(15)));
        assert_eq!(sc.failures[0].toward, TowardSpec::OriginPrefixes);
        // Serialize back and reparse.
        let json = to_json(&sc);
        let again = parse(&json).unwrap();
        assert_eq!(again.duration_min, 90);
        assert!(matches!(again.failures[0].element, ElementSpec::As(15)));
        assert_eq!(again.failures[0].end_min, Some(70));
    }

    #[test]
    fn run_example_scenario() {
        let sc = parse(EXAMPLE).unwrap();
        let out = run(&sc).unwrap();
        // The failure may or may not hit the monitored path on this seed;
        // the run must complete with a coherent outcome either way.
        assert_eq!(out.targets.len(), 1);
        assert_eq!(out.downtime_ms.len(), 1);
        for line in out.log_lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn bad_scenarios_are_rejected() {
        assert!(parse("{").is_err());
        let mut sc = parse(EXAMPLE).unwrap();
        sc.targets.clear();
        assert!(run(&sc).is_err());
        let mut sc = parse(EXAMPLE).unwrap();
        sc.origin = AsPick::Explicit(4242);
        assert!(run(&sc).is_err());
    }

    #[test]
    fn custom_topology_spec() {
        let sc = parse(
            r#"{
            "topology": {"custom": {"tier1": 2, "tier2": 3, "tier3": 5, "stubs": 12, "seed": 3}},
            "origin": "auto",
            "targets": ["auto"],
            "vantage_points": ["auto"],
            "failures": [],
            "duration_min": 5
        }"#,
        )
        .unwrap();
        let cfg = sc.topology.to_config();
        assert_eq!(cfg.total(), 22);
        let out = run(&sc).unwrap();
        assert!(out.events.is_empty(), "no failures, no events");
        assert_eq!(out.downtime_ms[0].1, 0);
    }

    #[test]
    fn explicit_picks_respected() {
        let mut sc = parse(EXAMPLE).unwrap();
        // Resolve the auto choices of the default run first.
        let auto = run(&sc).unwrap();
        sc.origin = AsPick::Explicit(auto.origin.0);
        sc.targets = vec![AsPick::Explicit(auto.targets[0].0)];
        let out = run(&sc).unwrap();
        assert_eq!(out.origin, auto.origin);
        assert_eq!(out.targets, auto.targets);
    }
}
