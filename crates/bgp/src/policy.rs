//! Import policies: loop detection and path filters.

use crate::path::AsPath;
use lg_asmap::{AsId, Relationship};

/// BGP loop-detection configuration for one AS.
///
/// Standard BGP drops any received path containing the receiver's own ASN.
/// §7.1 documents two deviations LIFEGUARD must handle: networks that raise
/// the threshold (e.g. AS286 accepts a path containing itself once, so a
/// single poison does not stick and the origin must insert the AS twice), and
/// networks that disable loop detection entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopDetection {
    /// Reject a path when the receiver's ASN occurs at least this many times.
    /// `1` is standard BGP; `2` models the AS286-style max-occurrences
    /// configuration; `u8::MAX` effectively disables loop detection.
    pub reject_at: u8,
}

impl Default for LoopDetection {
    fn default() -> Self {
        LoopDetection { reject_at: 1 }
    }
}

impl LoopDetection {
    /// Standard single-occurrence rejection.
    pub fn standard() -> Self {
        Self::default()
    }

    /// Accept one occurrence of the own ASN, reject at two (AS286-style).
    pub fn max_occurrences(n: u8) -> Self {
        LoopDetection {
            reject_at: n.saturating_add(1),
        }
    }

    /// Loop detection disabled.
    pub fn disabled() -> Self {
        LoopDetection { reject_at: u8::MAX }
    }

    /// Does `own` accept a received `path` under this configuration?
    pub fn accepts(&self, own: AsId, path: &AsPath) -> bool {
        (path.count(own) as u64) < self.reject_at as u64
    }
}

/// Why an import filter rejected a path. The variants map one-to-one onto
/// the `policy.filtered_*` telemetry counters so the engines can attribute
/// every rejection without re-deriving it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Loop detection: the receiver's own ASN occurred too often.
    Loop,
    /// Cogent-style peer-in-customer-path filter.
    PeerInCustomerPath,
    /// A deny-listed AS appeared as a transit hop.
    DenyTransit,
    /// The path exceeded the receiver's max-AS-path-length cap.
    PathLenCap,
    /// The path carried a poisoning signature (non-adjacent repeated ASN).
    Poisoned,
    /// The path contained a reserved/private ASN.
    ReservedAsn,
}

/// Is `asn` reserved or private (RFC 6996, RFC 7300, AS_TRANS, AS 0)?
/// Smith et al. observe large transit networks dropping announcements whose
/// paths carry such ASNs — which catches poisons minted from private space.
pub fn is_reserved_asn(asn: AsId) -> bool {
    matches!(asn.0, 0 | 23_456 | 64_512..=65_535 | 4_200_000_000..)
}

/// Full import policy of one AS.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImportPolicy {
    /// Loop-detection configuration.
    pub loop_detection: LoopDetection,
    /// Cogent-style filter (§7.1): reject an update *from a customer* when
    /// the path contains one of this AS's peers. Poisoning a Tier-1 through
    /// such a provider fails to propagate.
    pub reject_peers_in_customer_path: bool,
    /// Transit deny list (models commercial/academic route filters, §5.1's
    /// validation cases): reject any path in which one of these ASes
    /// appears as a *transit* hop. Routes originated by the listed AS are
    /// still accepted — the filter refuses to route *through* it, not *to*
    /// it.
    pub deny_transit: Vec<AsId>,
    /// Max-AS-path-length cap (Smith et al.): reject any path longer than
    /// this many hops, prepends included. `None` disables the cap. Long
    /// poison+prepend announcements are the first casualty.
    pub max_path_len: Option<u8>,
    /// Drop announcements carrying a poisoning signature: an ASN repeated
    /// *non-adjacently* in the path. Legitimate prepending repeats an ASN
    /// in adjacent positions only; LIFEGUARD's `O-A-O` splits the origin
    /// around the poison, which this filter detects at large transit ASes.
    pub drop_poisoned: bool,
    /// Drop announcements whose path contains a reserved/private ASN
    /// (see [`is_reserved_asn`]).
    pub drop_reserved_asn: bool,
    /// This AS points a default route at a provider. Defaults do not affect
    /// import filtering or route selection — they matter to *reachability*:
    /// an AS with a default still forwards toward its provider when it holds
    /// no route, which throttles poisoning (traffic keeps flowing along the
    /// old path). Consumed by the data-plane reachability helpers.
    pub default_route: bool,
}

impl ImportPolicy {
    /// Standard policy: plain loop detection, no extra filters.
    pub fn standard() -> Self {
        Self::default()
    }

    /// Does this AS accept `path` announced by a neighbor related by
    /// `rel_to_sender`, given the AS's peer list?
    pub fn accepts(
        &self,
        own: AsId,
        peers: &[AsId],
        rel_to_sender: Relationship,
        path: &AsPath,
    ) -> bool {
        let hops = path.hops();
        self.accepts_hops(own, peers, rel_to_sender, hops.iter().copied(), hops.len())
    }

    /// [`Self::accepts_hops`], reporting *why* a path was rejected.
    pub fn evaluate(
        &self,
        own: AsId,
        peers: &[AsId],
        rel_to_sender: Relationship,
        path: &AsPath,
    ) -> Option<RejectReason> {
        let hops = path.hops();
        self.evaluate_hops(own, peers, rel_to_sender, hops.iter().copied(), hops.len())
    }

    /// [`Self::accepts`] over a hop iterator (nearest-first, `hops_len`
    /// total hops), for callers that represent paths without materializing
    /// a `Vec` — the static route engine's hot loop checks candidates
    /// straight out of its path arena through this.
    pub fn accepts_hops<I>(
        &self,
        own: AsId,
        peers: &[AsId],
        rel_to_sender: Relationship,
        hops: I,
        hops_len: usize,
    ) -> bool
    where
        I: IntoIterator<Item = AsId>,
    {
        self.evaluate_hops(own, peers, rel_to_sender, hops, hops_len)
            .is_none()
    }

    /// The filter core: every predicate runs in a single pass over the hop
    /// iterator. Loop detection counts occurrences of `own`, the
    /// Cogent-style filter scans for peers on customer-learned paths, the
    /// transit deny list checks every hop except the last (the origin — we
    /// refuse to route *through* a denied AS, not *to* it), the length cap
    /// short-circuits before the scan, the reserved-ASN filter checks each
    /// hop, and the poison filter tracks the previous hop plus a seen-set
    /// (allocated only when the filter is on) to catch non-adjacent repeats
    /// while letting adjacent prepending through. Returns the first reason
    /// to fire, or `None` when the path is accepted.
    pub fn evaluate_hops<I>(
        &self,
        own: AsId,
        peers: &[AsId],
        rel_to_sender: Relationship,
        hops: I,
        hops_len: usize,
    ) -> Option<RejectReason>
    where
        I: IntoIterator<Item = AsId>,
    {
        if let Some(cap) = self.max_path_len {
            if hops_len > cap as usize {
                return Some(RejectReason::PathLenCap);
            }
        }
        let check_peers =
            self.reject_peers_in_customer_path && rel_to_sender == Relationship::Customer;
        let reject_at = self.loop_detection.reject_at as u64;
        let mut own_count: u64 = 0;
        let mut prev: Option<AsId> = None;
        let mut seen: Vec<AsId> = if self.drop_poisoned {
            Vec::with_capacity(hops_len)
        } else {
            Vec::new()
        };
        for (idx, h) in hops.into_iter().enumerate() {
            if h == own {
                own_count += 1;
                if own_count >= reject_at {
                    return Some(RejectReason::Loop);
                }
            }
            if check_peers && peers.contains(&h) {
                return Some(RejectReason::PeerInCustomerPath);
            }
            if idx + 1 < hops_len && self.deny_transit.contains(&h) {
                return Some(RejectReason::DenyTransit);
            }
            if self.drop_reserved_asn && is_reserved_asn(h) {
                return Some(RejectReason::ReservedAsn);
            }
            if self.drop_poisoned {
                if prev != Some(h) {
                    if seen.contains(&h) {
                        return Some(RejectReason::Poisoned);
                    }
                    seen.push(h);
                }
                prev = Some(h);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: AsId = AsId(50);

    #[test]
    fn standard_loop_detection_rejects_own_asn() {
        let ld = LoopDetection::standard();
        assert!(ld.accepts(ME, &AsPath::from_hops(vec![AsId(1), AsId(2)])));
        assert!(!ld.accepts(ME, &AsPath::from_hops(vec![AsId(1), ME])));
    }

    #[test]
    fn max_occurrences_needs_double_poison() {
        // AS286-style: one occurrence tolerated, two rejected.
        let ld = LoopDetection::max_occurrences(1);
        let single = AsPath::poisoned(AsId(100), &[ME]);
        let double = AsPath::poisoned(AsId(100), &[ME, ME]);
        assert!(ld.accepts(ME, &single), "single poison should NOT stick");
        assert!(!ld.accepts(ME, &double), "double poison should stick");
    }

    #[test]
    fn disabled_loop_detection_accepts_everything() {
        let ld = LoopDetection::disabled();
        let p = AsPath::from_hops(vec![ME; 20]);
        assert!(ld.accepts(ME, &p));
    }

    #[test]
    fn cogent_filter_rejects_customer_updates_naming_peers() {
        let policy = ImportPolicy {
            reject_peers_in_customer_path: true,
            ..ImportPolicy::default()
        };
        let peers = [AsId(701), AsId(1299)];
        let poisoned = AsPath::poisoned(AsId(100), &[AsId(701)]);
        // From a customer: rejected.
        assert!(!policy.accepts(ME, &peers, Relationship::Customer, &poisoned));
        // The same path from a peer: accepted (filter is customer-specific).
        assert!(policy.accepts(ME, &peers, Relationship::Peer, &poisoned));
        // A clean path from a customer: accepted.
        let clean = AsPath::origin_only(AsId(100));
        assert!(policy.accepts(ME, &peers, Relationship::Customer, &clean));
    }

    #[test]
    fn deny_transit_rejects_any_direction() {
        let policy = ImportPolicy {
            deny_transit: vec![AsId(9)],
            ..ImportPolicy::default()
        };
        let p = AsPath::from_hops(vec![AsId(1), AsId(9), AsId(2)]);
        assert!(!policy.accepts(ME, &[], Relationship::Provider, &p));
        assert!(!policy.accepts(ME, &[], Relationship::Customer, &p));
        let q = AsPath::from_hops(vec![AsId(1), AsId(2)]);
        assert!(policy.accepts(ME, &[], Relationship::Provider, &q));
    }

    #[test]
    fn deny_transit_still_accepts_routes_originated_by_denied_as() {
        let policy = ImportPolicy {
            deny_transit: vec![AsId(9)],
            ..ImportPolicy::default()
        };
        // AS9 as the origin: acceptable (we refuse to route through it,
        // not to it).
        let own = AsPath::from_hops(vec![AsId(1), AsId(9)]);
        assert!(policy.accepts(ME, &[], Relationship::Provider, &own));
        // AS9 as origin but also mid-path: rejected.
        let through = AsPath::from_hops(vec![AsId(9), AsId(1), AsId(9)]);
        assert!(!policy.accepts(ME, &[], Relationship::Provider, &through));
    }

    #[test]
    fn loop_detection_composes_with_filters() {
        let policy = ImportPolicy {
            reject_peers_in_customer_path: true,
            ..ImportPolicy::default()
        };
        let p = AsPath::from_hops(vec![AsId(1), ME]);
        assert!(!policy.accepts(ME, &[], Relationship::Customer, &p));
    }

    #[test]
    fn path_len_cap_rejects_long_paths_only() {
        let policy = ImportPolicy {
            max_path_len: Some(3),
            ..ImportPolicy::default()
        };
        let short = AsPath::from_hops(vec![AsId(1), AsId(2), AsId(3)]);
        let long = AsPath::from_hops(vec![AsId(1), AsId(2), AsId(3), AsId(4)]);
        assert!(policy.accepts(ME, &[], Relationship::Provider, &short));
        assert!(!policy.accepts(ME, &[], Relationship::Provider, &long));
        assert_eq!(
            policy.evaluate(ME, &[], Relationship::Provider, &long),
            Some(RejectReason::PathLenCap)
        );
        // Prepends count toward the cap — the Smith et al. failure mode:
        // a poison plus prepending silently exceeds a neighbor's cap.
        let prepended = AsPath::prepended_baseline(AsId(9), 4);
        assert!(!policy.accepts(ME, &[], Relationship::Customer, &prepended));
    }

    #[test]
    fn poison_filter_drops_split_origins_but_not_prepends() {
        let policy = ImportPolicy {
            drop_poisoned: true,
            ..ImportPolicy::default()
        };
        // O-A-O: the poisoning signature — origin repeated non-adjacently.
        let poisoned = AsPath::poisoned(AsId(100), &[AsId(7)]);
        assert_eq!(
            policy.evaluate(ME, &[], Relationship::Customer, &poisoned),
            Some(RejectReason::Poisoned)
        );
        // O-O-O prepending repeats adjacently: legitimate, accepted.
        let prepended = AsPath::prepended_baseline(AsId(100), 3);
        assert!(policy.accepts(ME, &[], Relationship::Customer, &prepended));
        // Prepending by a transit hop mid-path is also adjacent: accepted.
        let transit_prepend = AsPath::from_hops(vec![AsId(3), AsId(3), AsId(2), AsId(1)]);
        assert!(policy.accepts(ME, &[], Relationship::Customer, &transit_prepend));
        // Double poison O-A-A-O still has the non-adjacent origin repeat.
        let double = AsPath::poisoned(AsId(100), &[AsId(7), AsId(7)]);
        assert!(!policy.accepts(ME, &[], Relationship::Customer, &double));
    }

    #[test]
    fn reserved_asn_filter() {
        let policy = ImportPolicy {
            drop_reserved_asn: true,
            ..ImportPolicy::default()
        };
        for bad in [0u32, 23_456, 64_512, 65_534, 65_535, 4_200_000_000] {
            let p = AsPath::from_hops(vec![AsId(1), AsId(bad), AsId(2)]);
            assert_eq!(
                policy.evaluate(ME, &[], Relationship::Provider, &p),
                Some(RejectReason::ReservedAsn),
                "ASN {bad} should be reserved"
            );
        }
        let clean = AsPath::from_hops(vec![AsId(1), AsId(64_511), AsId(2)]);
        assert!(policy.accepts(ME, &[], Relationship::Provider, &clean));
    }

    #[test]
    fn default_route_flag_does_not_affect_import() {
        let policy = ImportPolicy {
            default_route: true,
            ..ImportPolicy::default()
        };
        let p = AsPath::poisoned(AsId(100), &[AsId(7)]);
        assert_eq!(
            policy.evaluate(ME, &[], Relationship::Customer, &p),
            ImportPolicy::default().evaluate(ME, &[], Relationship::Customer, &p)
        );
    }

    #[test]
    fn zero_filter_policy_is_the_default_policy() {
        // The byte-identity guarantee hinges on the new fields defaulting
        // to "off": a freshly constructed policy must equal `standard()`.
        let p = ImportPolicy::default();
        assert_eq!(p.max_path_len, None);
        assert!(!p.drop_poisoned);
        assert!(!p.drop_reserved_asn);
        assert!(!p.default_route);
    }
}
