//! Ping results: the observable outcome plus ground-truth diagnosis.

use lg_asmap::AsId;

/// Ground truth about what happened to a ping. **Not observable** by the
/// prober in the real world; used only by tests and the §5.3 accuracy study
/// to score isolation results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PingDiagnosis {
    /// Echo reply came back.
    Reply,
    /// The request died on the forward path, in or entering this AS.
    ForwardLoss(AsId),
    /// The reply died on the reverse path, in or entering this AS.
    ReverseLoss(AsId),
    /// The destination's routers are configured to ignore ICMP.
    DestIgnoresPings,
    /// The destination rate-limited the probe.
    RateLimited,
}

/// Outcome of one ping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PingResult {
    /// Observable: did a reply arrive at the receiver?
    pub responded: bool,
    /// Observable: round-trip time when a reply arrived.
    pub rtt_ms: Option<u64>,
    /// Ground truth (see [`PingDiagnosis`]); isolation logic must not read
    /// this.
    pub diagnosis: PingDiagnosis,
}

impl PingResult {
    pub(crate) fn reply(rtt_ms: u64) -> Self {
        PingResult {
            responded: true,
            rtt_ms: Some(rtt_ms),
            diagnosis: PingDiagnosis::Reply,
        }
    }

    pub(crate) fn lost(diagnosis: PingDiagnosis) -> Self {
        PingResult {
            responded: false,
            rtt_ms: None,
            diagnosis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let ok = PingResult::reply(42);
        assert!(ok.responded);
        assert_eq!(ok.rtt_ms, Some(42));
        assert_eq!(ok.diagnosis, PingDiagnosis::Reply);
        let bad = PingResult::lost(PingDiagnosis::ForwardLoss(AsId(3)));
        assert!(!bad.responded);
        assert_eq!(bad.rtt_ms, None);
    }
}
