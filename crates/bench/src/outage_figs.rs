//! Figures 1 and 5: outage-duration distribution and residual durations.

use crate::report::{pct, Table};
use lg_workloads::{OutageStats, OutageTrace, OutageTraceConfig};

/// Generate the standard EC2-calibrated trace.
pub fn standard_trace() -> OutageTrace {
    OutageTraceConfig::default().generate()
}

/// Fig 1: CDF of outage durations and of total unreachability.
pub fn fig1_table(trace: &OutageTrace) -> Table {
    let stats = OutageStats::new(&trace.durations);
    let mut t = Table::new(
        "Fig 1: partial outage durations (EC2-calibrated synthetic trace)",
        &[
            "duration <=",
            "fraction of events",
            "fraction of unreachability",
        ],
    );
    for mins in [1.5, 3.0, 5.0, 10.0, 30.0, 60.0, 600.0, 5760.0] {
        let secs = mins * 60.0;
        t.row(&[
            format!("{mins} min"),
            pct(stats.cdf(secs)),
            pct(stats.unavailability_cdf(secs)),
        ]);
    }
    t
}

/// The Fig 1 headline anchors: (events ≤ 10 min, unavailability from > 10
/// min).
pub fn fig1_anchors(trace: &OutageTrace) -> (f64, f64) {
    let stats = OutageStats::new(&trace.durations);
    (stats.cdf(600.0), 1.0 - stats.unavailability_cdf(600.0))
}

/// Fig 5: residual duration after an outage has persisted X minutes.
pub fn fig5_table(trace: &OutageTrace) -> Table {
    let stats = OutageStats::new(&trace.durations);
    let mut t = Table::new(
        "Fig 5: residual outage duration vs elapsed time",
        &["elapsed", "25th pct", "median", "mean", "still active"],
    );
    for mins in [0u64, 2, 5, 10, 15, 20, 25, 30] {
        let x = (mins * 60) as f64;
        if let Some((q25, med, mean)) = stats.residual_summary(x) {
            t.row(&[
                format!("{mins} min"),
                format!("{:.1} min", q25 / 60.0),
                format!("{:.1} min", med / 60.0),
                format!("{:.1} min", mean / 60.0),
                pct(stats.survival(x)),
            ]);
        }
    }
    t
}

/// §4.2 persistence gates: P(≥10 | ≥5 min) and P(≥15 | ≥10 min), plus the
/// avoidable-unavailability estimate with a 5 min reaction + 2 min
/// convergence.
pub fn persistence_anchors(trace: &OutageTrace) -> (f64, f64, f64) {
    let stats = OutageStats::new(&trace.durations);
    (
        stats.conditional_survival(300.0, 600.0),
        stats.conditional_survival(600.0, 900.0),
        stats.avoidable_unavailability(300.0, 120.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let trace = standard_trace();
        let (short_frac, long_unavail) = fig1_anchors(&trace);
        assert!(short_frac > 0.9);
        assert!((0.74..=0.92).contains(&long_unavail));
        let (p5, p10, avoidable) = persistence_anchors(&trace);
        assert!((0.42..=0.6).contains(&p5));
        assert!((0.58..=0.85).contains(&p10));
        assert!((0.68..=0.9).contains(&avoidable));
    }

    #[test]
    fn tables_render() {
        let trace = standard_trace();
        let f1 = fig1_table(&trace).render();
        assert!(f1.contains("10 min"));
        let f5 = fig5_table(&trace).render();
        assert!(f5.contains("still active"));
    }
}
