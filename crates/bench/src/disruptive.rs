//! §2.3 / §5.2: path diversity for failure avoidance.
//!
//! Forward paths: with five providers (the university BGP-Muxes), how often
//! can the origin dodge a failed last-hop AS link toward a destination by
//! egressing through a different provider? (Paper: 90%.)
//!
//! Reverse paths: how often can *selective poisoning* — poisoning an AS via
//! all providers but one — steer a remote AS off its first-hop link toward
//! our prefix while leaving it a route? (Paper: 73%.)

use crate::report::{pct, Table};
use crate::worlds::{production_prefix, MuxWorld};
use lg_asmap::AsId;
use lg_sim::dataplane::infra_prefix;
use lg_sim::{compute_routes, AnnouncementSpec, RouteComputer};

/// Outcome of both diversity studies.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiversityResult {
    /// Forward cases (destination ASes with a usable last-hop link).
    pub fwd_cases: usize,
    /// Forward cases where another provider avoids the failed link.
    pub fwd_avoidable: usize,
    /// Reverse cases (peer ASes with an identifiable first-hop link).
    pub rev_cases: usize,
    /// Reverse cases where selective poisoning shifts the peer off the
    /// link while keeping it routed.
    pub rev_avoidable: usize,
}

impl DiversityResult {
    /// Forward avoidance rate.
    pub fn fwd_rate(&self) -> f64 {
        if self.fwd_cases == 0 {
            0.0
        } else {
            self.fwd_avoidable as f64 / self.fwd_cases as f64
        }
    }

    /// Reverse (selective poisoning) avoidance rate.
    pub fn rev_rate(&self) -> f64 {
        if self.rev_cases == 0 {
            0.0
        } else {
            self.rev_avoidable as f64 / self.rev_cases as f64
        }
    }
}

/// Run both studies over a `n_providers`-homed origin against
/// `world.collector_peers`.
pub fn run_diversity(world: &MuxWorld) -> DiversityResult {
    let net = &world.net;
    let computer = RouteComputer::new();
    let mut out = DiversityResult::default();

    // --- Forward study (§2.3): last-AS-link avoidance via provider choice.
    // One infra table per collector peer, computed as a parallel batch.
    let fwd_specs: Vec<AnnouncementSpec> = world
        .collector_peers
        .iter()
        .map(|&peer| AnnouncementSpec::plain(net, infra_prefix(peer), peer))
        .collect();
    let fwd_tables = computer.compute_batch(net, &fwd_specs);
    for table in &fwd_tables {
        // The origin's current route is the best among its providers'.
        let Some(cur) = table.as_path(world.origin) else {
            continue;
        };
        // cur = [provider, ..., X, peer]; the last link is (X, peer).
        if cur.len() < 2 {
            continue; // peer adjacent to a provider: no transit link to fail
        }
        let x = cur[cur.len() - 2];
        out.fwd_cases += 1;
        // Another provider's route avoids the link when it does not end
        // ... X, peer.
        let avoidable = world.providers.iter().any(|p| {
            if Some(*p) == cur.first().copied() {
                return false; // the current egress
            }
            match table.as_path(*p) {
                Some(path) => {
                    let n = path.len();
                    !(n >= 2 && path[n - 2] == x) && table.has_route(*p)
                }
                None => false,
            }
        });
        if avoidable {
            out.fwd_avoidable += 1;
        }
    }

    // --- Reverse study (§5.2): selective poisoning of each peer AS.
    let prefix = production_prefix();
    let baseline = compute_routes(
        net,
        &AnnouncementSpec::prepended(net, prefix, world.origin, 3),
    );
    for &peer in &world.collector_peers {
        let Some(first_hop) = baseline.next_hop(peer) else {
            continue;
        };
        if first_hop == world.origin {
            continue; // directly attached: no transit first hop to avoid
        }
        out.rev_cases += 1;
        // Poison `peer` via all providers except M, for each M in turn —
        // the per-M what-ifs are independent, so compute them as one batch
        // and succeed when any of them steers the peer.
        let rev_specs: Vec<AnnouncementSpec> = world
            .providers
            .iter()
            .map(|keep_clean| {
                let poison_via: Vec<AsId> = world
                    .providers
                    .iter()
                    .copied()
                    .filter(|p| p != keep_clean)
                    .collect();
                AnnouncementSpec::selective_poison(net, prefix, world.origin, &[peer], &poison_via)
            })
            .collect();
        let ok = computer
            .compute_batch(net, &rev_specs)
            .iter()
            .any(|table| matches!(table.next_hop(peer), Some(nh) if nh != first_hop));
        if ok {
            out.rev_avoidable += 1;
        }
    }
    out
}

/// §2.3's community experiment: announce with communities attached while
/// tier-1s strip them; count collector peers that still see the community,
/// split by whether their path crosses a tier-1. The paper found that every
/// AS reaching the prefix through a Tier-1 had lost the communities.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommunityReach {
    /// Peers whose path crosses a tier-1.
    pub via_tier1: usize,
    /// ...that still carry the community (paper: 0).
    pub via_tier1_with_community: usize,
    /// Peers avoiding tier-1s entirely.
    pub other: usize,
    /// ...that still carry the community.
    pub other_with_community: usize,
}

/// Run the community-propagation probe over a mux world.
pub fn run_communities(world: &MuxWorld) -> CommunityReach {
    let mut net = world.net.clone();
    let tier1s: Vec<_> = net
        .graph()
        .ases()
        .filter(|a| net.graph().tier(*a) == 1)
        .collect();
    for a in tier1s {
        net.set_strips_communities(a, true);
    }
    let community = (65_000u32 << 16) | 1;
    let spec = AnnouncementSpec::prepended(&net, production_prefix(), world.origin, 3)
        .with_communities(vec![community]);
    let table = compute_routes(&net, &spec);
    let mut out = CommunityReach::default();
    for &p in &world.collector_peers {
        let Some(route) = table.route(p) else {
            continue;
        };
        let via_t1 = route.path.hops().iter().any(|h| net.graph().tier(*h) == 1);
        let has = route.communities.contains(&community);
        if via_t1 {
            out.via_tier1 += 1;
            if has {
                out.via_tier1_with_community += 1;
            }
        } else {
            out.other += 1;
            if has {
                out.other_with_community += 1;
            }
        }
    }
    out
}

/// One strategy's aggregate outcome in the footprint ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct FootprintStats {
    /// Cases where the target AS ended up avoiding the failing link while
    /// keeping a route.
    pub avoided: usize,
    /// Total ASes (excluding the steered target) whose next hop changed.
    pub disturbed: usize,
    /// Cases evaluated.
    pub cases: usize,
}

impl FootprintStats {
    /// Success rate.
    pub fn success(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.avoided as f64 / self.cases as f64
        }
    }

    /// Mean collateral route changes per case.
    pub fn mean_disturbed(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.disturbed as f64 / self.cases as f64
        }
    }
}

/// The Fig 3 ablation: to steer a remote AS `A` off its first-hop link
/// toward our prefix, compare the §2.3 traffic-engineering alternatives —
/// selective advertising and prepending — against selective poisoning, by
/// success rate and by how many *other* ASes get their routes disturbed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FootprintComparison {
    /// Withdraw the announcement from the failing-side provider entirely.
    pub selective_advertising: FootprintStats,
    /// Prepend heavily via the failing-side provider (path length 6 vs 3).
    pub prepending: FootprintStats,
    /// Poison `A` everywhere.
    pub global_poison: FootprintStats,
    /// Poison `A` only via the failing side (the paper's technique).
    pub selective_poison: FootprintStats,
}

fn count_disturbed(
    net: &lg_sim::Network,
    base: &lg_sim::RouteTable,
    new: &lg_sim::RouteTable,
    steered: AsId,
) -> usize {
    net.graph()
        .ases()
        .filter(|a| *a != steered && *a != base.origin && base.next_hop(*a) != new.next_hop(*a))
        .count()
}

/// Run the footprint ablation over the collector peers of a multi-provider
/// world (each peer plays the role of the AS whose first-hop link fails).
pub fn run_footprint(world: &MuxWorld, max_cases: usize) -> FootprintComparison {
    let net = &world.net;
    let computer = RouteComputer::new();
    let prefix = production_prefix();
    let baseline_spec = AnnouncementSpec::prepended(net, prefix, world.origin, 3);
    let base = compute_routes(net, &baseline_spec);
    let mut out = FootprintComparison::default();

    let mut evaluated = 0;
    for &peer in &world.collector_peers {
        if evaluated >= max_cases {
            break;
        }
        let Some(first_hop) = base.next_hop(peer) else {
            continue;
        };
        if first_hop == world.origin {
            continue;
        }
        // Which of our providers carries the peer's current route? That is
        // the "failing side" to steer away from.
        let Some(path) = base.as_path(peer) else {
            continue;
        };
        let Some(&via_provider) = path.iter().rev().find(|h| world.providers.contains(h)) else {
            continue;
        };
        evaluated += 1;

        let others: Vec<AsId> = world
            .providers
            .iter()
            .copied()
            .filter(|p| *p != via_provider)
            .collect();

        // The four strategies' what-if tables, computed as one batch:
        // (a) selective advertising: drop the failing-side provider;
        // (b) prepend via the failing side (6 copies) vs 3 elsewhere;
        // (c) global poison of the peer;
        // (d) selective poison via the failing side only (the paper's).
        let mut seeds = Vec::new();
        for p in &world.providers {
            let copies = if *p == via_provider { 6 } else { 3 };
            seeds.push((*p, lg_bgp::AsPath::prepended_baseline(world.origin, copies)));
        }
        let specs = [
            AnnouncementSpec::via(
                prefix,
                world.origin,
                lg_bgp::AsPath::prepended_baseline(world.origin, 3),
                &others,
            ),
            AnnouncementSpec {
                prefix,
                origin: world.origin,
                seeds,
                communities: Vec::new(),
            },
            AnnouncementSpec::poisoned(net, prefix, world.origin, &[peer]),
            AnnouncementSpec::selective_poison(net, prefix, world.origin, &[peer], &[via_provider]),
        ];
        let tables = computer.compute_batch(net, &specs);
        for (t, stats) in tables.iter().zip([
            &mut out.selective_advertising,
            &mut out.prepending,
            &mut out.global_poison,
            &mut out.selective_poison,
        ]) {
            stats.cases += 1;
            let ok = match t.next_hop(peer) {
                Some(nh) => nh != first_hop,
                None => false,
            };
            if ok {
                stats.avoided += 1;
            }
            stats.disturbed += count_disturbed(net, &base, t, peer);
        }
    }
    out
}

/// The footprint ablation table.
pub fn footprint_table(c: &FootprintComparison) -> Table {
    let mut t = Table::new(
        "Fig 3 ablation: steering one AS off a link — success vs collateral disruption",
        &[
            "strategy",
            "link avoided",
            "mean other ASes disturbed",
            "cases",
        ],
    );
    for (label, s) in [
        ("selective advertising", &c.selective_advertising),
        ("prepending (6 vs 3)", &c.prepending),
        ("global poisoning (cuts the target off)", &c.global_poison),
        ("selective poisoning (paper)", &c.selective_poison),
    ] {
        t.row(&[
            label.into(),
            pct(s.success()),
            format!("{:.1}", s.mean_disturbed()),
            s.cases.to_string(),
        ]);
    }
    t
}

/// The diversity table.
pub fn diversity_table(r: &DiversityResult) -> Table {
    let mut t = Table::new(
        "§2.3/§5.2 Path diversity: avoiding links via egress choice and selective poisoning",
        &["metric", "paper", "measured", "cases"],
    );
    t.row(&[
        "forward: last-hop link avoidable via other provider".into(),
        "90%".into(),
        pct(r.fwd_rate()),
        r.fwd_cases.to_string(),
    ]);
    t.row(&[
        "reverse: first-hop link avoided by selective poisoning".into(),
        "73%".into(),
        pct(r.rev_rate()),
        r.rev_cases.to_string(),
    ]);
    t
}

/// The §2.3 community-propagation table.
pub fn communities_table(c: &CommunityReach) -> Table {
    let mut t = Table::new(
        "§2.3 BGP communities as a notification channel (tier-1s strip them)",
        &["peer population", "paper", "still sees community", "peers"],
    );
    t.row(&[
        "route crosses a tier-1".into(),
        "0%".into(),
        format!("{}/{}", c.via_tier1_with_community, c.via_tier1),
        c.via_tier1.to_string(),
    ]);
    t.row(&[
        "route avoids tier-1s".into(),
        "n/a".into(),
        format!("{}/{}", c.other_with_community, c.other),
        c.other.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::mux_world;
    use lg_asmap::TopologyConfig;

    #[test]
    fn selective_poisoning_has_smallest_footprint() {
        let world = mux_world(&TopologyConfig::small(19), 3, 40);
        let c = run_footprint(&world, 25);
        assert!(c.selective_poison.cases >= 10, "{c:?}");
        // The paper's point: when selective poisoning works, it disturbs
        // (almost) nobody else, while selective advertising and global
        // poisoning shuffle many working routes.
        assert!(
            c.selective_poison.mean_disturbed() < c.selective_advertising.mean_disturbed(),
            "{c:?}"
        );
        assert!(
            c.selective_poison.mean_disturbed() <= c.global_poison.mean_disturbed(),
            "{c:?}"
        );
        // Global poisoning never counts as success here: poisoning A
        // everywhere makes A reject its own route entirely ("A will lack a
        // route entirely", §3.1.2) rather than steering it.
        assert_eq!(c.global_poison.success(), 0.0, "{c:?}");
        assert!(c.selective_poison.success() > 0.5, "{c:?}");
    }

    #[test]
    fn communities_never_survive_tier1_transit() {
        let world = mux_world(&TopologyConfig::small(17), 2, 30);
        let c = run_communities(&world);
        assert!(c.via_tier1 > 0, "need peers routing via tier-1");
        assert_eq!(c.via_tier1_with_community, 0, "paper: 0% through tier-1s");
        assert!(c.other_with_community == c.other, "clean paths keep them");
    }

    #[test]
    fn diversity_rates_in_band() {
        let world = mux_world(&TopologyConfig::small(13), 5, 30);
        let r = run_diversity(&world);
        assert!(r.fwd_cases >= 15, "fwd cases {}", r.fwd_cases);
        assert!(r.rev_cases >= 15, "rev cases {}", r.rev_cases);
        assert!(
            (0.4..=1.0).contains(&r.fwd_rate()),
            "fwd rate {}",
            r.fwd_rate()
        );
        assert!(
            (0.3..=1.0).contains(&r.rev_rate()),
            "rev rate {}",
            r.rev_rate()
        );
        // Forward diversity (choose your own egress) should be at least as
        // effective as steering remote ASes.
        assert!(r.fwd_rate() >= r.rev_rate() - 0.1);
    }
}
