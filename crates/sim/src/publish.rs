//! Lock-free publication of immutable snapshots: a hand-rolled, std-only
//! arc-swap.
//!
//! [`ArcSlot`] holds one published `Arc<T>` behind an [`AtomicPtr`].
//! Readers take a snapshot with a single atomic pointer load plus a
//! *hazard-pointer* handshake (no mutex, no reader-side blocking); writers
//! swap in a replacement and reclaim the old value once no reader can
//! still be touching it. This is the publication primitive under the
//! shared route cache's wait-free hit path: the cache publishes an
//! immutable, generation-stamped shard snapshot here, and every cache hit
//! is one `load()` plus a stamp comparison.
//!
//! # Protocol
//!
//! The classic hazard-pointer argument, specialized to a single slot:
//!
//! * **Readers** claim one of a fixed array of hazard slots (a CAS on a
//!   null slot), publish the pointer they loaded into it, and then
//!   *re-validate* that the slot still holds the currently published
//!   pointer. If validation passes, the pointer cannot be freed — any
//!   writer that unpublished it afterwards must scan the hazard array and
//!   will see the claim. If validation fails (a writer swapped in
//!   between), the reader re-publishes the new pointer and retries; each
//!   retry implies a completed publication elsewhere, so the loop is
//!   lock-free.
//! * **Writers** swap the published pointer (serialized by the internal
//!   reclamation mutex) and then scan the hazard array: an old pointer
//!   seen in no slot is dropped immediately; a protected one parks in a
//!   graveyard that is re-scanned on every later store. Readers never
//!   take the mutex on the fast path, so writer-side blocking never
//!   propagates to the hit path.
//! * All cross-thread handshakes (`ptr` swap/load, hazard publish, hazard
//!   scan) are `SeqCst`, so the "reader validates after publishing its
//!   hazard" / "writer scans after unpublishing" pair cannot be reordered
//!   into a use-after-free: in the single total order either the reader's
//!   validation sees the swap (and retries) or the writer's scan sees the
//!   hazard (and defers the drop).
//!
//! If every hazard slot is momentarily claimed (more concurrent readers
//! than [`HAZARD_SLOTS`]), the reader falls back to cloning under the
//! reclamation mutex — still correct, counted as a retry so the cache's
//! `cache.snapshot_retries` telemetry exposes it.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Number of hazard slots per [`ArcSlot`]. Readers claim one slot each for
/// the few instructions between load and refcount bump, so this bounds the
/// number of *simultaneously mid-load* readers served lock-free — far more
/// than the planner fan-outs the cache serves (and overflow degrades to a
/// correct mutex fallback, not an error).
const HAZARD_SLOTS: usize = 32;

/// Outcome statistics of one [`ArcSlot::load`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Times the hazard validation had to re-run because a writer swapped
    /// the published pointer mid-handshake (plus one per mutex fallback).
    pub retries: u64,
}

/// A single `Arc<T>` published for lock-free reading. See the module docs
/// for the protocol.
#[derive(Debug)]
pub struct ArcSlot<T> {
    /// The currently published value. The slot owns one strong count of
    /// it, transferred in/out via [`Arc::into_raw`]/[`Arc::from_raw`].
    ptr: AtomicPtr<T>,
    /// Hazard array: a non-null entry is a pointer some reader is between
    /// loading and cloning. Null entries are claimable by CAS.
    hazards: Box<[AtomicPtr<T>]>,
    /// Retired pointers that were hazard-protected when unpublished (the
    /// slot still owns their strong count), plus the writer/fallback
    /// serialization point. Drained on every store.
    graveyard: Mutex<Vec<*mut T>>,
}

// SAFETY: an `ArcSlot<T>` only hands out `Arc<T>` clones and only drops
// `Arc<T>`s; the raw pointers it stores are all `Arc`-owned allocations.
// It is therefore exactly as thread-mobile as `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for ArcSlot<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSlot<T> {}

impl<T> ArcSlot<T> {
    /// A slot initially publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSlot {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            hazards: (0..HAZARD_SLOTS)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// The currently published value.
    pub fn load(&self) -> Arc<T> {
        self.load_counted().0
    }

    /// The currently published value plus handshake statistics (how many
    /// times a concurrent publication forced a retry).
    pub fn load_counted(&self) -> (Arc<T>, LoadStats) {
        let mut stats = LoadStats::default();
        // Claim a hazard slot, publishing the pointer we intend to read as
        // part of the claim.
        let mut claimed: Option<&AtomicPtr<T>> = None;
        for h in self.hazards.iter() {
            let p = self.ptr.load(Ordering::SeqCst);
            if h.compare_exchange(ptr::null_mut(), p, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                claimed = Some(h);
                break;
            }
        }
        let Some(h) = claimed else {
            // Every slot busy: clone under the reclamation mutex. Sound
            // because reclamation (graveyard drain, store-side drop) only
            // ever happens while holding that mutex.
            stats.retries += 1;
            return (self.load_under_mutex(), stats);
        };
        loop {
            // The pointer we published in our hazard slot (only we write
            // this slot while claimed).
            let p = h.load(Ordering::Relaxed);
            if self.ptr.load(Ordering::SeqCst) == p {
                // Validated: `p` is published *and* hazard-protected, so no
                // writer can reclaim it before our slot clears.
                // SAFETY: `p` came from `Arc::into_raw` and its strong
                // count cannot reach zero while our hazard slot names it
                // (writers scan hazards after unpublishing, and `p` is
                // still published or parked in the graveyard). Bumping the
                // count and re-materializing one `Arc` hands us an owned
                // clone without disturbing the slot's own count.
                let arc = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                // Release: the refcount bump above must be visible to any
                // writer that observes the cleared slot.
                h.store(ptr::null_mut(), Ordering::Release);
                return (arc, stats);
            }
            // A writer swapped between our load and the validation;
            // re-publish the new pointer and re-validate.
            stats.retries += 1;
            let p2 = self.ptr.load(Ordering::SeqCst);
            h.store(p2, Ordering::SeqCst);
        }
    }

    /// Run `f` against the currently published value *without* cloning it:
    /// the hazard slot (or, on overflow, the reclamation mutex) keeps the
    /// value alive for exactly the duration of the call. This is the
    /// cheapest read — callers that only need a borrow (the cache's hit
    /// probe) skip `load`'s refcount round-trip entirely.
    pub fn peek_counted<R>(&self, f: impl FnOnce(&T) -> R) -> (R, LoadStats) {
        let mut stats = LoadStats::default();
        let mut claimed: Option<&AtomicPtr<T>> = None;
        for h in self.hazards.iter() {
            let p = self.ptr.load(Ordering::SeqCst);
            if h.compare_exchange(ptr::null_mut(), p, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                claimed = Some(h);
                break;
            }
        }
        let Some(h) = claimed else {
            // Every slot busy: borrow under the reclamation mutex (see
            // `load_under_mutex` for why this is sound).
            stats.retries += 1;
            let _guard = self.graveyard.lock().expect("ArcSlot graveyard poisoned");
            let p = self.ptr.load(Ordering::SeqCst);
            // SAFETY: reclamation only runs under the mutex we hold and
            // `p` is currently published, so it is live for the call.
            return (f(unsafe { &*p }), stats);
        };
        loop {
            let p = h.load(Ordering::Relaxed);
            if self.ptr.load(Ordering::SeqCst) == p {
                // Clear the slot even if `f` unwinds — a leaked claim
                // would pin its pointer (and shrink the lock-free reader
                // budget) forever.
                struct ClearOnDrop<'a, T>(&'a AtomicPtr<T>);
                impl<T> Drop for ClearOnDrop<'_, T> {
                    fn drop(&mut self) {
                        self.0.store(ptr::null_mut(), Ordering::Release);
                    }
                }
                let _clear = ClearOnDrop(h);
                // SAFETY: `p` is published *and* hazard-protected (the
                // same argument as `load_counted`); it cannot be dropped
                // before our slot clears.
                return (f(unsafe { &*p }), stats);
            }
            stats.retries += 1;
            let p2 = self.ptr.load(Ordering::SeqCst);
            h.store(p2, Ordering::SeqCst);
        }
    }

    /// Publish `value`, retiring the previously published snapshot (dropped
    /// now if unprotected, parked until a later store otherwise).
    ///
    /// Writers serialize on the internal reclamation mutex; callers that
    /// already serialize (the cache's per-shard writer mutex) pay an
    /// uncontended lock.
    pub fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value) as *mut T;
        let mut graveyard = self.graveyard.lock().expect("ArcSlot graveyard poisoned");
        let old = self.ptr.swap(new, Ordering::SeqCst);
        graveyard.push(old);
        self.drain(&mut graveyard);
    }

    /// Drop every graveyard entry no hazard slot names. Must hold the
    /// graveyard mutex (enforced by the `&mut` borrow of its guard).
    fn drain(&self, graveyard: &mut Vec<*mut T>) {
        graveyard.retain(|&p| {
            if self.hazards.iter().any(|h| h.load(Ordering::SeqCst) == p) {
                return true; // still protected: re-check on the next store
            }
            // SAFETY: `p` was unpublished (it sits in the graveyard, and
            // the published pointer is never pushed there while current)
            // and no hazard slot names it, so no reader can reach it
            // anymore; dropping reclaims the slot's strong count.
            unsafe { drop(Arc::from_raw(p)) };
            false
        });
    }

    /// Number of retired snapshots awaiting reclamation (readers were
    /// still on them at their retirement). Testing/diagnostics.
    pub fn graveyard_len(&self) -> usize {
        self.graveyard
            .lock()
            .expect("ArcSlot graveyard poisoned")
            .len()
    }

    fn load_under_mutex(&self) -> Arc<T> {
        let _guard = self.graveyard.lock().expect("ArcSlot graveyard poisoned");
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: reclamation only runs under the graveyard mutex, which we
        // hold, and `p` is currently published, so its strong count is live.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }
}

impl<T> Drop for ArcSlot<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers or writers remain, every pointer we own
        // is reclaimable.
        let graveyard = self
            .graveyard
            .get_mut()
            .expect("ArcSlot graveyard poisoned");
        for p in graveyard.drain(..) {
            // SAFETY: graveyard entries own a strong count (see `store`).
            unsafe { drop(Arc::from_raw(p)) };
        }
        let published = *self.ptr.get_mut();
        // SAFETY: the slot owns one strong count of the published value.
        unsafe { drop(Arc::from_raw(published)) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_returns_published_value() {
        let slot = ArcSlot::new(Arc::new(7u64));
        assert_eq!(*slot.load(), 7);
        slot.store(Arc::new(8));
        assert_eq!(*slot.load(), 8);
        let (v, stats) = slot.load_counted();
        assert_eq!(*v, 8);
        assert_eq!(stats.retries, 0, "uncontended load never retries");
    }

    #[test]
    fn peek_borrows_published_value_without_cloning() {
        let slot = ArcSlot::new(Arc::new(41u64));
        let (doubled, stats) = slot.peek_counted(|v| v * 2);
        assert_eq!(doubled, 82);
        assert_eq!(stats.retries, 0);
        // No refcount was taken: publishing a replacement reclaims the
        // old value eagerly (nothing parks in the graveyard).
        slot.store(Arc::new(43));
        assert_eq!(slot.graveyard_len(), 0);
        assert_eq!(slot.peek_counted(|v| *v).0, 43);
        // A panicking closure must not leak its hazard claim.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.peek_counted(|_| panic!("probe failed"));
        }));
        assert!(unwound.is_err());
        slot.store(Arc::new(44));
        assert_eq!(slot.graveyard_len(), 0, "hazard claim leaked by unwind");
    }

    #[test]
    fn old_snapshots_survive_while_held() {
        let slot = ArcSlot::new(Arc::new(String::from("first")));
        let held = slot.load();
        slot.store(Arc::new(String::from("second")));
        slot.store(Arc::new(String::from("third")));
        assert_eq!(held.as_str(), "first", "held clone outlives retirement");
        assert_eq!(slot.load().as_str(), "third");
    }

    #[test]
    fn drop_reclaims_graveyard_and_published() {
        // Tracked payloads: every allocation must be dropped exactly once.
        struct Tracked<'a>(&'a AtomicU64);
        impl Drop for Tracked<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = AtomicU64::new(0);
        {
            let slot = ArcSlot::new(Arc::new(Tracked(&drops)));
            for _ in 0..10 {
                slot.store(Arc::new(Tracked(&drops)));
            }
            // 10 of the 11 allocations were retired and, with no readers,
            // reclaimed eagerly.
            assert_eq!(drops.load(Ordering::Relaxed), 10);
            assert_eq!(slot.graveyard_len(), 0);
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            11,
            "published value freed on drop"
        );
    }

    #[test]
    fn concurrent_loads_and_stores_stay_coherent() {
        // Readers must only ever observe fully-published pairs — a torn
        // snapshot would break the (x, 2*x) invariant.
        const WRITES: u64 = 2_000;
        let slot = Arc::new(ArcSlot::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    // Check-then-test order guarantees at least one load
                    // even if this thread is scheduled only after the
                    // writer finished (routine on a single-core box).
                    loop {
                        let pair = slot.load();
                        assert_eq!(pair.1, pair.0 * 2, "torn snapshot observed");
                        if stop.load(Ordering::Relaxed) != 0 {
                            break;
                        }
                    }
                });
            }
            for x in 1..=WRITES {
                slot.store(Arc::new((x, x * 2)));
            }
            stop.store(1, Ordering::Relaxed);
        });
        let last = slot.load();
        assert_eq!(*last, (WRITES, WRITES * 2));
    }
}
