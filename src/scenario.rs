//! Declarative scenario files for the `lifeguard-sim` CLI.
//!
//! A scenario describes a topology, a LIFEGUARD deployment, and a timeline
//! of silent failures; [`run`] executes it and returns the system's event
//! log plus a reachability summary. Scenarios are plain JSON (see
//! `scenarios/*.json` for examples) so downstream users can script
//! experiments without writing Rust.

use lg_asmap::{AsId, TopologyConfig, TopologyKind};
use lg_bgp::Prefix;
use lg_sim::dataplane::infra_prefix;
use lg_sim::failures::{Failure, NetElement};
use lg_sim::{Network, Time};
use lifeguard_core::{Event, Lifeguard, LifeguardConfig, World};
use serde::{Deserialize, Serialize};

/// Topology selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TopologySpec {
    /// ~50 ASes.
    Small {
        /// RNG seed.
        seed: u64,
    },
    /// ~1000 ASes.
    Medium {
        /// RNG seed.
        seed: u64,
    },
    /// ~10 000 ASes.
    Large {
        /// RNG seed.
        seed: u64,
    },
    /// Fully custom parameters.
    Custom {
        /// Tier-1 count.
        tier1: usize,
        /// Tier-2 count.
        tier2: usize,
        /// Tier-3 count.
        tier3: usize,
        /// Stub count.
        stubs: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Materialize the generator config.
    pub fn to_config(&self) -> TopologyConfig {
        match *self {
            TopologySpec::Small { seed } => TopologyConfig::small(seed),
            TopologySpec::Medium { seed } => TopologyConfig::medium(seed),
            TopologySpec::Large { seed } => TopologyConfig::large(seed),
            TopologySpec::Custom {
                tier1,
                tier2,
                tier3,
                stubs,
                seed,
            } => TopologyConfig {
                kind: TopologyKind::Hierarchical,
                tier1,
                tier2,
                tier3,
                stubs,
                ..TopologyConfig::small(seed)
            },
        }
    }
}

/// An AS id or "pick one automatically".
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AsPick {
    /// Explicit AS number.
    Explicit(u32),
    /// `"auto"`.
    Auto(AutoTag),
}

/// The literal string `"auto"`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AutoTag {
    /// Pick automatically.
    Auto,
}

/// Which destination prefix a failure affects.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "snake_case")]
pub enum TowardSpec {
    /// The production prefix, the sentinel, and the origin's infra prefix —
    /// a full reverse-path failure toward the deployment.
    OriginPrefixes,
    /// A specific target AS's infra prefix (forward-path failure).
    Target,
    /// All traffic through the element.
    All,
}

/// One failure in the timeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureSpec {
    /// The failed AS (`{"as": 7}`) or link (`{"link": [2, 4]}`).
    #[serde(flatten)]
    pub element: ElementSpec,
    /// Scope of affected destinations.
    pub toward: TowardSpec,
    /// Start minute.
    pub start_min: u64,
    /// End minute (omit for "until the end").
    #[serde(default)]
    pub end_min: Option<u64>,
}

/// Serialized failure element.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ElementSpec {
    /// A whole AS.
    #[serde(rename = "as")]
    As(u32),
    /// An AS-AS link.
    #[serde(rename = "link")]
    Link(u32, u32),
    /// Resolved at run time: `{"auto": "reverse_transit"}` fails the first
    /// transit AS on the reverse path from the first target back to the
    /// origin — guaranteed to hit the monitored path.
    #[serde(rename = "auto")]
    Auto(AutoElement),
}

/// Auto-resolved failure elements.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AutoElement {
    /// First transit AS on the reverse path target → origin.
    ReverseTransit,
    /// First transit-to-transit link on the reverse path target → origin.
    ReverseLink,
}

/// A complete scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Topology to generate.
    pub topology: TopologySpec,
    /// LIFEGUARD's origin AS (`"auto"` picks a multihomed stub).
    pub origin: AsPick,
    /// Monitored destinations (`"auto"` entries pick distinct stubs).
    pub targets: Vec<AsPick>,
    /// Vantage points assisting isolation.
    pub vantage_points: Vec<AsPick>,
    /// Failure timeline.
    pub failures: Vec<FailureSpec>,
    /// Total simulated duration, minutes.
    pub duration_min: u64,
}

/// Result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The LIFEGUARD event log.
    pub events: Vec<Event>,
    /// The chosen origin.
    pub origin: AsId,
    /// The chosen targets.
    pub targets: Vec<AsId>,
    /// Per-target downtime in ms observed by an external monitor pinging
    /// every 30 s (ground-truth unavailability, detection lag included).
    pub downtime_ms: Vec<(AsId, u64)>,
}

impl RunOutcome {
    /// Render the event log as text lines.
    pub fn log_lines(&self) -> Vec<String> {
        self.events.iter().map(|e| e.to_string()).collect()
    }
}

/// Error type for scenario loading/solving.
#[derive(Debug)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn resolve_picks(
    net: &Network,
    origin: AsPick,
    picks: &[AsPick],
    taken: &mut Vec<AsId>,
) -> Result<(AsId, Vec<AsId>), ScenarioError> {
    let mut auto_pool: Vec<AsId> = net
        .graph()
        .ases()
        .filter(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .collect();
    let mut next_auto = move |taken: &mut Vec<AsId>| -> Result<AsId, ScenarioError> {
        // Spread picks across the pool deterministically.
        while !auto_pool.is_empty() {
            // Take from alternating ends for diversity.
            let a = if taken.len().is_multiple_of(2) {
                auto_pool.remove(0)
            } else {
                auto_pool.pop().unwrap()
            };
            if !taken.contains(&a) {
                taken.push(a);
                return Ok(a);
            }
        }
        Err(ScenarioError(
            "not enough multihomed stubs for auto picks".into(),
        ))
    };
    let origin = match origin {
        AsPick::Explicit(v) => {
            let a = AsId(v);
            taken.push(a);
            a
        }
        AsPick::Auto(_) => next_auto(taken)?,
    };
    let mut out = Vec::new();
    for p in picks {
        out.push(match p {
            AsPick::Explicit(v) => {
                let a = AsId(*v);
                taken.push(a);
                a
            }
            AsPick::Auto(_) => next_auto(taken)?,
        });
    }
    Ok((origin, out))
}

/// Execute a scenario.
pub fn run(scenario: &Scenario) -> Result<RunOutcome, ScenarioError> {
    let topo = scenario.topology.to_config();
    let net = Network::new(topo.generate());
    let mut taken = Vec::new();
    let (origin, targets) = resolve_picks(&net, scenario.origin, &scenario.targets, &mut taken)?;
    let (_, vps) = resolve_picks(
        &net,
        AsPick::Explicit(origin.0),
        &scenario.vantage_points,
        &mut taken,
    )?;
    if targets.is_empty() {
        return Err(ScenarioError("at least one target required".into()));
    }
    for a in targets.iter().chain(vps.iter()).chain([&origin]) {
        if a.index() >= net.len() {
            return Err(ScenarioError(format!("{a} is outside the topology")));
        }
    }

    let production = Prefix::from_octets(184, 164, 224, 0, 20);
    let sentinel = Prefix::from_octets(184, 164, 224, 0, 19);
    let mut cfg = LifeguardConfig::paper_defaults(origin, production, sentinel);
    cfg.targets = targets.clone();
    cfg.vantage_points = vps;

    let mut world = World::new(&net);
    let mut lifeguard = Lifeguard::new(cfg);
    lifeguard.install(&mut world, Time::ZERO);

    // Install the failure timeline.
    let reverse_hops = world
        .dp
        .walk(Time::ZERO, targets[0], production.nth_addr(1))
        .as_hops();
    let reverse_transit = reverse_hops.get(1).copied();
    let reverse_link = (reverse_hops.len() >= 4).then(|| (reverse_hops[1], reverse_hops[2]));
    for f in &scenario.failures {
        let from = Time::from_mins(f.start_min);
        let until = f.end_min.map(Time::from_mins);
        let towards: Vec<Option<Prefix>> = match f.toward {
            TowardSpec::All => vec![None],
            TowardSpec::OriginPrefixes => {
                vec![Some(production), Some(sentinel), Some(infra_prefix(origin))]
            }
            TowardSpec::Target => targets.iter().map(|t| Some(infra_prefix(*t))).collect(),
        };
        for toward in towards {
            let base = match f.element {
                ElementSpec::As(a) => Failure::silent_as(AsId(a)),
                ElementSpec::Link(a, b) => Failure::silent_link(AsId(a), AsId(b)),
                ElementSpec::Auto(AutoElement::ReverseTransit) => {
                    Failure::silent_as(reverse_transit.ok_or_else(|| {
                        ScenarioError("no reverse path to resolve auto element".into())
                    })?)
                }
                ElementSpec::Auto(AutoElement::ReverseLink) => {
                    let (a, b) = reverse_link.ok_or_else(|| {
                        ScenarioError("reverse path too short for a transit link".into())
                    })?;
                    Failure::silent_link(a, b)
                }
            };
            let mut fail = base.window(from, until);
            fail.toward = toward;
            if matches!(fail.element, NetElement::As(a) if a == origin) {
                return Err(ScenarioError("cannot fail the origin itself".into()));
            }
            world.dp.failures_mut().add(fail);
        }
    }

    // Run the clock: LIFEGUARD ticks every ping interval; an external
    // ground-truth monitor accounts downtime.
    let interval = lifeguard.config().ping_interval_ms;
    let mut downtime: Vec<(AsId, u64)> = targets.iter().map(|t| (*t, 0)).collect();
    let mut now = Time::from_secs(60);
    let end = Time::from_mins(scenario.duration_min);
    while now <= end {
        lifeguard.tick(&mut world, now);
        for (t, d) in downtime.iter_mut() {
            let (fwd, rev) = world.dp.round_trip(
                now,
                origin,
                production.nth_addr(1),
                infra_prefix(*t).nth_addr(1),
            );
            let up = fwd.outcome.delivered() && rev.is_some_and(|r| r.outcome.delivered());
            if !up {
                *d += interval;
            }
        }
        now += interval;
    }

    Ok(RunOutcome {
        events: lifeguard.events().to_vec(),
        origin,
        targets,
        downtime_ms: downtime,
    })
}

/// Parse a scenario from JSON.
pub fn parse(json: &str) -> Result<Scenario, ScenarioError> {
    serde_json::from_str(json).map_err(|e| ScenarioError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "topology": {"small": {"seed": 7}},
        "origin": "auto",
        "targets": ["auto"],
        "vantage_points": ["auto", "auto"],
        "failures": [
            {"as": 15, "toward": "origin_prefixes", "start_min": 10, "end_min": 70}
        ],
        "duration_min": 90
    }"#;

    #[test]
    fn parse_roundtrip() {
        let sc = parse(EXAMPLE).unwrap();
        assert_eq!(sc.duration_min, 90);
        assert_eq!(sc.failures.len(), 1);
        assert!(matches!(sc.failures[0].element, ElementSpec::As(15)));
        assert_eq!(sc.failures[0].toward, TowardSpec::OriginPrefixes);
        // Serialize back and reparse.
        let json = serde_json::to_string(&sc).unwrap();
        let again = parse(&json).unwrap();
        assert_eq!(again.duration_min, 90);
    }

    #[test]
    fn run_example_scenario() {
        let sc = parse(EXAMPLE).unwrap();
        let out = run(&sc).unwrap();
        // The failure may or may not hit the monitored path on this seed;
        // the run must complete with a coherent outcome either way.
        assert_eq!(out.targets.len(), 1);
        assert_eq!(out.downtime_ms.len(), 1);
        for line in out.log_lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn bad_scenarios_are_rejected() {
        assert!(parse("{").is_err());
        let mut sc = parse(EXAMPLE).unwrap();
        sc.targets.clear();
        assert!(run(&sc).is_err());
        let mut sc = parse(EXAMPLE).unwrap();
        sc.origin = AsPick::Explicit(4242);
        assert!(run(&sc).is_err());
    }

    #[test]
    fn custom_topology_spec() {
        let sc = parse(
            r#"{
            "topology": {"custom": {"tier1": 2, "tier2": 3, "tier3": 5, "stubs": 12, "seed": 3}},
            "origin": "auto",
            "targets": ["auto"],
            "vantage_points": ["auto"],
            "failures": [],
            "duration_min": 5
        }"#,
        )
        .unwrap();
        let cfg = sc.topology.to_config();
        assert_eq!(cfg.total(), 22);
        let out = run(&sc).unwrap();
        assert!(out.events.is_empty(), "no failures, no events");
        assert_eq!(out.downtime_ms[0].1, 0);
    }

    #[test]
    fn explicit_picks_respected() {
        let mut sc = parse(EXAMPLE).unwrap();
        // Resolve the auto choices of the default run first.
        let auto = run(&sc).unwrap();
        sc.origin = AsPick::Explicit(auto.origin.0);
        sc.targets = vec![AsPick::Explicit(auto.targets[0].0)];
        let out = run(&sc).unwrap();
        assert_eq!(out.origin, auto.origin);
        assert_eq!(out.targets, auto.targets);
    }
}
