//! Integration: the event-driven engine must converge to the static fixed
//! point for arbitrary generated topologies and announcement shapes — the
//! property that justifies using the static engine for the large-scale
//! studies.

use lifeguard_repro::asmap::{AsId, TopologyConfig};
use lifeguard_repro::bgp::Prefix;
use lifeguard_repro::sim::{
    compute_routes, AnnouncementSpec, DynamicSim, DynamicSimConfig, Network, Time,
};

fn check_equivalence(net: &Network, specs: &[AnnouncementSpec]) {
    check_equivalence_with(net, specs, DynamicSimConfig::default());
}

fn check_equivalence_with(net: &Network, specs: &[AnnouncementSpec], cfg: DynamicSimConfig) {
    let mut sim = DynamicSim::new(net, cfg);
    for spec in specs {
        sim.announce(spec);
        sim.run_until_quiescent(Time::from_mins(120));
        assert!(sim.quiescent(), "must quiesce");
        let table = compute_routes(net, spec);
        for a in net.graph().ases() {
            if a == spec.origin {
                continue;
            }
            let dynamic = sim.loc_route(a, spec.prefix).map(|r| r.learned_from);
            assert_eq!(
                dynamic,
                table.next_hop(a),
                "{a} disagrees for {} (origin {})",
                spec.prefix,
                spec.origin
            );
        }
    }
}

#[test]
fn dynamic_matches_static_across_topologies_and_announcements() {
    for seed in [1u64, 2, 3] {
        let graph = TopologyConfig::small(seed).generate();
        let net = Network::new(graph);
        let stubs: Vec<AsId> = net
            .graph()
            .ases()
            .filter(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
            .collect();
        let origin = stubs[0];
        let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
        let transit = net.graph().providers(origin)[0];
        let above: Vec<AsId> = net.graph().providers(transit);
        let poison_target = if above.is_empty() { transit } else { above[0] };

        let specs = vec![
            AnnouncementSpec::plain(&net, prefix, origin),
            AnnouncementSpec::prepended(&net, prefix, origin, 3),
            AnnouncementSpec::poisoned(&net, prefix, origin, &[poison_target]),
            // Back to baseline (unpoison transition).
            AnnouncementSpec::prepended(&net, prefix, origin, 3),
        ];
        check_equivalence(&net, &specs);
    }
}

#[test]
fn dynamic_matches_static_for_selective_poisoning() {
    let graph = TopologyConfig::small(17).generate();
    let net = Network::new(graph);
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .unwrap();
    let providers = net.graph().providers(origin);
    let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
    // Poison some AS two levels up, via the first provider only.
    let above = net.graph().providers(providers[0]);
    let target = if above.is_empty() {
        providers[1]
    } else {
        above[0]
    };
    let spec = AnnouncementSpec::selective_poison(&net, prefix, origin, &[target], &[providers[0]]);
    check_equivalence(&net, &[spec]);
}

#[test]
fn policy_quirks_agree_across_engines() {
    use lifeguard_repro::bgp::{ImportPolicy, LoopDetection};
    // Lenient loop detection (§7.1) and the Cogent-style peer filter must
    // behave identically in both engines.
    let graph = TopologyConfig::small(31).generate();
    let mut net = Network::new(graph);
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .unwrap();
    let provider = net.graph().providers(origin)[0];
    let above = net.graph().providers(provider);
    if above.is_empty() {
        return;
    }
    let lenient = above[0];
    net.set_policy(
        lenient,
        ImportPolicy {
            loop_detection: LoopDetection::max_occurrences(1),
            ..ImportPolicy::standard()
        },
    );
    let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
    for poisons in [vec![lenient], vec![lenient, lenient]] {
        let spec = AnnouncementSpec::uniform(
            &net,
            prefix,
            origin,
            lifeguard_repro::bgp::AsPath::poisoned(origin, &poisons),
        );
        check_equivalence(&net, std::slice::from_ref(&spec));
        let table = compute_routes(&net, &spec);
        if poisons.len() == 1 {
            assert!(table.has_route(lenient), "single poison ignored");
        } else {
            assert!(!table.has_route(lenient), "double poison sticks");
        }
    }
}

#[test]
fn filtered_policies_agree_across_engines() {
    use lifeguard_repro::workloads::FilterMatrix;
    // Every filter-matrix point: import-time filtering (path-length caps,
    // poison drops, reserved-ASN drops) must produce the same fixed point
    // in both engines, for plain, prepended, and poisoned announcements.
    for matrix in FilterMatrix::ALL {
        for seed in [5u64, 29] {
            let graph = TopologyConfig::small(seed).generate();
            let mut net = Network::new(graph);
            matrix.apply(&mut net, seed);
            let origin = net
                .graph()
                .ases()
                .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
                .unwrap();
            let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
            let transit = net.graph().providers(origin)[0];
            let above = net.graph().providers(transit);
            let poison_target = if above.is_empty() { transit } else { above[0] };
            let specs = vec![
                AnnouncementSpec::plain(&net, prefix, origin),
                AnnouncementSpec::prepended(&net, prefix, origin, 4),
                AnnouncementSpec::poisoned(&net, prefix, origin, &[poison_target]),
                AnnouncementSpec::prepended(&net, prefix, origin, 8),
            ];
            println!(
                "engine equivalence: matrix {} seed {seed} origin {origin}",
                matrix.label()
            );
            check_equivalence(&net, &specs);
        }
    }
}

#[test]
fn dynamic_matches_static_on_calibrated_topology() {
    use lifeguard_repro::workloads::WorkerMatrix;
    // The Internet-calibrated generator produces a very different shape from
    // the presets (power-law degrees, deep stub fan-out); both engines must
    // still agree. Debug builds use a smaller instance so `cargo test` stays
    // fast; release CI runs the full 10k. The topology seed is replayable
    // via `LG_CHURN_SEED`, and the same announcements also run through the
    // parallel window engine (`LG_WORKER_MATRIX` point, default 4) — the
    // static fixed point is the shared ground truth for both engine modes.
    let n = if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    };
    let seed = match std::env::var("LG_CHURN_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("LG_CHURN_SEED must be a u64, got {s:?}")),
        Err(_) => 11,
    };
    let graph = TopologyConfig::calibrated(n, seed).generate();
    let net = Network::new(graph);
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .unwrap();
    let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
    let transit = net.graph().providers(origin)[0];
    let above = net.graph().providers(transit);
    let poison_target = if above.is_empty() { transit } else { above[0] };
    let specs = vec![
        AnnouncementSpec::plain(&net, prefix, origin),
        AnnouncementSpec::poisoned(&net, prefix, origin, &[poison_target]),
    ];
    check_equivalence(&net, &specs);
    let workers = WorkerMatrix::from_env()
        .unwrap_or(WorkerMatrix::W4)
        .workers();
    check_equivalence_with(
        &net,
        &specs,
        DynamicSimConfig {
            workers,
            parallel_spawn_min: 0,
            ..DynamicSimConfig::default()
        },
    );
}

#[test]
fn withdrawals_clear_state_in_both_engines() {
    let graph = TopologyConfig::small(23).generate();
    let net = Network::new(graph);
    let origin = net
        .graph()
        .ases()
        .find(|a| net.graph().is_stub(*a))
        .unwrap();
    let prefix = Prefix::from_octets(184, 164, 224, 0, 20);
    let spec = AnnouncementSpec::plain(&net, prefix, origin);
    let mut sim = DynamicSim::new(&net, DynamicSimConfig::default());
    sim.announce(&spec);
    sim.run_until_quiescent(Time::from_mins(60));
    sim.withdraw(prefix);
    sim.run_until_quiescent(Time::from_mins(120));
    for a in net.graph().ases() {
        assert!(sim.loc_route(a, prefix).is_none(), "{a} kept a route");
    }
}
