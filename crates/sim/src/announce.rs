//! Origin announcement specifications.
//!
//! LIFEGUARD's lever is the content of the origin's announcement: the
//! prepended baseline `O-O-O`, the poisoned `O-A-O`, selective advertising
//! (announce via only some providers), and selective poisoning (different
//! path content per provider, §3.1.2). An [`AnnouncementSpec`] captures
//! exactly what each neighbor of the origin receives.

use crate::network::Network;
use lg_asmap::AsId;
use lg_bgp::{AsPath, Prefix};

/// What an origin AS announces for one prefix: per-neighbor AS paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnouncementSpec {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The originating AS.
    pub origin: AsId,
    /// `(neighbor, path-as-received-by-neighbor)` — neighbors absent from the
    /// list receive nothing (selective advertising). Paths must start and end
    /// with `origin`.
    pub seeds: Vec<(AsId, AsPath)>,
    /// BGP community values attached to the announcement (§2.3). They ride
    /// along until some AS on the path strips them.
    pub communities: Vec<u32>,
}

impl AnnouncementSpec {
    /// Announce `path` uniformly to every neighbor of `origin`.
    pub fn uniform(net: &Network, prefix: Prefix, origin: AsId, path: AsPath) -> Self {
        let seeds = net
            .graph()
            .neighbors(origin)
            .iter()
            .map(|(n, _)| (*n, path.clone()))
            .collect();
        AnnouncementSpec {
            prefix,
            origin,
            seeds,
            communities: Vec::new(),
        }
    }

    /// The plain announcement `O` to all neighbors.
    pub fn plain(net: &Network, prefix: Prefix, origin: AsId) -> Self {
        Self::uniform(net, prefix, origin, AsPath::origin_only(origin))
    }

    /// The paper's steady-state baseline `O-O-O` to all neighbors.
    pub fn prepended(net: &Network, prefix: Prefix, origin: AsId, copies: usize) -> Self {
        Self::uniform(
            net,
            prefix,
            origin,
            AsPath::prepended_baseline(origin, copies),
        )
    }

    /// A global poison `O-A1..Ak-O` to all neighbors.
    pub fn poisoned(net: &Network, prefix: Prefix, origin: AsId, poisons: &[AsId]) -> Self {
        Self::uniform(net, prefix, origin, AsPath::poisoned(origin, poisons))
    }

    /// Selective poisoning (§3.1.2): neighbors in `poison_via` receive the
    /// poisoned path; everyone else receives the unpoisoned baseline of equal
    /// length (poison count + 2 copies of the origin).
    pub fn selective_poison(
        net: &Network,
        prefix: Prefix,
        origin: AsId,
        poisons: &[AsId],
        poison_via: &[AsId],
    ) -> Self {
        let poisoned = AsPath::poisoned(origin, poisons);
        let clean = AsPath::prepended_baseline(origin, poisons.len() + 2);
        let seeds = net
            .graph()
            .neighbors(origin)
            .iter()
            .map(|(n, _)| {
                let path = if poison_via.contains(n) {
                    poisoned.clone()
                } else {
                    clean.clone()
                };
                (*n, path)
            })
            .collect();
        AnnouncementSpec {
            prefix,
            origin,
            seeds,
            communities: Vec::new(),
        }
    }

    /// Selective advertising: announce `path` only via the listed neighbors.
    pub fn via(prefix: Prefix, origin: AsId, path: AsPath, neighbors: &[AsId]) -> Self {
        AnnouncementSpec {
            prefix,
            origin,
            seeds: neighbors.iter().map(|n| (*n, path.clone())).collect(),
            communities: Vec::new(),
        }
    }

    /// Attach community values to the announcement.
    pub fn with_communities(mut self, communities: Vec<u32>) -> Self {
        self.communities = communities;
        self
    }

    /// The path announced to `neighbor`, if any.
    pub fn path_for(&self, neighbor: AsId) -> Option<&AsPath> {
        self.seeds
            .iter()
            .find(|(n, _)| *n == neighbor)
            .map(|(_, p)| p)
    }

    /// Sanity-check the spec: every seed adjacent to the origin, every path
    /// starting and ending with the origin.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        for (n, p) in &self.seeds {
            if !net.graph().are_adjacent(self.origin, *n) {
                return Err(format!(
                    "seed {n} is not adjacent to origin {}",
                    self.origin
                ));
            }
            if p.first() != Some(self.origin) || p.origin() != Some(self.origin) {
                return Err(format!(
                    "path {p} announced to {n} must start and end with {}",
                    self.origin
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_asmap::GraphBuilder;

    fn net() -> Network {
        // Origin 3 has providers 1 and 2; 0 is above both.
        let mut b = GraphBuilder::with_ases(4);
        b.provider_customer(AsId(0), AsId(1));
        b.provider_customer(AsId(0), AsId(2));
        b.provider_customer(AsId(1), AsId(3));
        b.provider_customer(AsId(2), AsId(3));
        Network::new(b.build())
    }

    fn pfx() -> Prefix {
        Prefix::from_octets(10, 0, 0, 0, 16)
    }

    #[test]
    fn uniform_covers_all_neighbors() {
        let n = net();
        let spec = AnnouncementSpec::prepended(&n, pfx(), AsId(3), 3);
        assert_eq!(spec.seeds.len(), 2);
        assert_eq!(spec.path_for(AsId(1)).unwrap().to_string(), "3-3-3");
        assert_eq!(spec.path_for(AsId(2)).unwrap().to_string(), "3-3-3");
        assert!(spec.validate(&n).is_ok());
    }

    #[test]
    fn selective_poison_differs_per_neighbor() {
        let n = net();
        let spec = AnnouncementSpec::selective_poison(&n, pfx(), AsId(3), &[AsId(0)], &[AsId(2)]);
        assert_eq!(spec.path_for(AsId(2)).unwrap().to_string(), "3-0-3");
        assert_eq!(spec.path_for(AsId(1)).unwrap().to_string(), "3-3-3");
        // Both arms the same length — the §3.1.1 convergence trick.
        assert_eq!(
            spec.path_for(AsId(1)).unwrap().len(),
            spec.path_for(AsId(2)).unwrap().len()
        );
        assert!(spec.validate(&n).is_ok());
    }

    #[test]
    fn selective_advertising_omits_neighbors() {
        let n = net();
        let spec = AnnouncementSpec::via(pfx(), AsId(3), AsPath::origin_only(AsId(3)), &[AsId(1)]);
        assert!(spec.path_for(AsId(1)).is_some());
        assert!(spec.path_for(AsId(2)).is_none());
        assert!(spec.validate(&n).is_ok());
    }

    #[test]
    fn validate_rejects_non_adjacent_seed() {
        let n = net();
        let spec = AnnouncementSpec::via(pfx(), AsId(3), AsPath::origin_only(AsId(3)), &[AsId(0)]);
        assert!(spec.validate(&n).is_err());
    }

    #[test]
    fn validate_rejects_bad_path_shape() {
        let n = net();
        // Path not ending with the origin looks like origin forgery.
        let spec = AnnouncementSpec::via(
            pfx(),
            AsId(3),
            AsPath::from_hops(vec![AsId(3), AsId(7)]),
            &[AsId(1)],
        );
        assert!(spec.validate(&n).is_err());
    }
}
