//! Dense prefix interning for full-table workloads.
//!
//! A [`Prefix`] is a fine hash key but a poor *index*: full-table engine
//! state (per-peer out-queues, Loc-RIBs, Adj-RIB-Ins at 100k+ prefixes)
//! wants small dense integer keys for sorted-vec probes and slab layouts.
//! [`PrefixInterner`] mirrors [`crate::PathInterner`]'s hash-consing idea
//! one level up: every distinct prefix gets a dense [`PrefixId`] (`u32`),
//! so id equality is prefix equality and per-(peer, prefix) state can live
//! in id-sorted vectors with O(log p) probes instead of O(p) scans.
//!
//! Unlike the per-simulation path interner, the prefix table is
//! *process-wide* (see [`PrefixId::of`]): prefixes are plain values with no
//! arena parents to share, and the differential harnesses drive several
//! simulations over one prefix pool — a shared table keeps every id
//! meaningful across all of them.
//!
//! Determinism rule: id *values* depend on process-global interning order
//! (test threads interleave), so engine code must never let id order reach
//! observable output. Anything feeding update logs, event order, or dumps
//! sorts by the resolved [`Prefix`]; ids serve as lookup keys only. The
//! multi-prefix determinism tests in `lg-sim` pin this.

use crate::prefix::Prefix;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Handle to a prefix interned in a [`PrefixInterner`].
///
/// Dense (`u32`, assigned in interning order) and totally ordered so
/// id-sorted vectors can binary-search — but the order is allocation
/// order, not prefix order; sort by [`PrefixId::resolve`] for anything
/// observable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PrefixId(u32);

impl PrefixId {
    /// The id for `prefix` in the process-wide table, interning on first
    /// sight. Read-locks for the (overwhelmingly common) already-interned
    /// case and escalates to a write lock only for genuinely new prefixes.
    pub fn of(prefix: Prefix) -> PrefixId {
        if let Some(id) = global()
            .read()
            .expect("prefix interner poisoned")
            .lookup(prefix)
        {
            return id;
        }
        global()
            .write()
            .expect("prefix interner poisoned")
            .intern(prefix)
    }

    /// The id for `prefix` if the process has seen it, without interning.
    /// Read paths use this so queries for never-announced prefixes do not
    /// grow the table.
    pub fn lookup(prefix: Prefix) -> Option<PrefixId> {
        global()
            .read()
            .expect("prefix interner poisoned")
            .lookup(prefix)
    }

    /// The prefix this id stands for.
    pub fn resolve(self) -> Prefix {
        global()
            .read()
            .expect("prefix interner poisoned")
            .resolve(self)
    }

    /// Dense index (for slab-style storage keyed by id).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional `Prefix` ↔ dense-id table.
///
/// The process-wide instance behind [`PrefixId::of`] is the one the
/// engines use; the type is public so tests and tools can build isolated
/// tables.
#[derive(Default, Debug, Clone)]
pub struct PrefixInterner {
    /// Id → prefix, dense.
    prefixes: Vec<Prefix>,
    /// Prefix → existing id.
    dedup: HashMap<Prefix, u32>,
}

impl PrefixInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct prefixes interned.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Intern `prefix`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, prefix: Prefix) -> PrefixId {
        if let Some(&id) = self.dedup.get(&prefix) {
            return PrefixId(id);
        }
        let id = u32::try_from(self.prefixes.len()).expect("prefix interner overflow");
        self.prefixes.push(prefix);
        self.dedup.insert(prefix, id);
        PrefixId(id)
    }

    /// The id for `prefix`, if interned.
    pub fn lookup(&self, prefix: Prefix) -> Option<PrefixId> {
        self.dedup.get(&prefix).map(|&id| PrefixId(id))
    }

    /// The prefix behind `id`. Panics on an id from a different table.
    pub fn resolve(&self, id: PrefixId) -> Prefix {
        self.prefixes[id.index()]
    }
}

fn global() -> &'static RwLock<PrefixInterner> {
    static GLOBAL: OnceLock<RwLock<PrefixInterner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(PrefixInterner::new()))
}

/// Number of distinct prefixes the process-wide table has seen (memory
/// diagnostic for the full-table benches).
pub fn interned_prefix_count() -> usize {
    global().read().expect("prefix interner poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::from_octets(a, b, c, d, len)
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = PrefixInterner::new();
        let a = t.intern(p(10, 0, 0, 0, 16));
        let b = t.intern(p(10, 1, 0, 0, 16));
        assert_ne!(a, b);
        assert_eq!(t.intern(p(10, 0, 0, 0, 16)), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), p(10, 0, 0, 0, 16));
        assert_eq!(t.resolve(b), p(10, 1, 0, 0, 16));
        assert_eq!(t.lookup(p(10, 1, 0, 0, 16)), Some(b));
        assert_eq!(t.lookup(p(10, 2, 0, 0, 16)), None);
        assert_eq!((a.index(), b.index()), (0, 1));
    }

    #[test]
    fn covering_and_covered_prefixes_get_distinct_ids() {
        // Same address, different mask lengths — distinct prefixes, so
        // distinct ids (the sentinel /19 vs production /20 pair).
        let mut t = PrefixInterner::new();
        let covering = t.intern(p(184, 164, 224, 0, 19));
        let covered = t.intern(p(184, 164, 224, 0, 20));
        assert_ne!(covering, covered);
        assert_eq!(t.resolve(covering).len(), 19);
        assert_eq!(t.resolve(covered).len(), 20);
    }

    #[test]
    fn global_table_is_stable_across_threads() {
        // Many threads interning the same prefixes must agree on every
        // mapping (ids are assigned once, then shared).
        let prefixes: Vec<Prefix> = (0..64).map(|i| p(172, 16, i, 0, 24)).collect();
        let ids: Vec<Vec<PrefixId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let prefixes = &prefixes;
                    s.spawn(move || prefixes.iter().map(|&q| PrefixId::of(q)).collect())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
        for (q, id) in prefixes.iter().zip(&ids[0]) {
            assert_eq!(id.resolve(), *q);
            assert_eq!(PrefixId::lookup(*q), Some(*id));
        }
        assert!(interned_prefix_count() >= prefixes.len());
    }
}
