//! Fig 6 and §5.2: convergence behavior after poisoned announcements, and
//! packet loss during convergence.
//!
//! For each harvested poison target the event-driven engine replays the
//! paper's procedure: announce a baseline (`O` or the prepended `O-O-O`),
//! let routing settle, flip to the poisoned announcement `O-A-O`, and watch
//! every collector peer's route changes. Peers are classified by whether
//! their pre-poison route traversed the poisoned AS ("change" vs "no
//! change"); the prepended baseline keeps announcement length constant so
//! unaffected peers should reconverge instantly. The data plane is probed
//! every 10 s of simulated time during convergence to measure transient
//! loss.

use crate::report::{pct, Table};
use crate::worlds::{mux_world, production_prefix, MuxWorld};
use lg_asmap::{AsId, TopologyConfig};
use lg_sim::{AnnouncementSpec, DynamicSim, DynamicSimConfig, Time};
use lg_workloads::harvest_poison_targets;

/// Per-arm convergence samples (one sample per (peer, poisoning)).
#[derive(Clone, Debug, Default)]
pub struct ArmStats {
    /// Convergence times in ms (0 = instant, a single route change).
    pub samples: Vec<u64>,
}

impl ArmStats {
    /// Fraction converging instantly.
    pub fn frac_instant(&self) -> f64 {
        self.frac_within(0)
    }

    /// Fraction converging within `ms`.
    pub fn frac_within(&self, ms: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples.iter().filter(|s| **s <= ms).count();
        n as f64 / self.samples.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Full result of the convergence study.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceResult {
    /// Prepend baseline, peer had been routing via the poisoned AS.
    pub prepend_change: ArmStats,
    /// Prepend baseline, peer not routing via the poisoned AS.
    pub prepend_nochange: ArmStats,
    /// Plain baseline, peer changed.
    pub plain_change: ArmStats,
    /// Plain baseline, peer unchanged.
    pub plain_nochange: ArmStats,
    /// Global convergence times (ms) per poisoning, prepended baseline.
    pub global_prepend: Vec<u64>,
    /// Global convergence times (ms) per poisoning, plain baseline.
    pub global_plain: Vec<u64>,
    /// Per-poisoning loss rate during convergence (prepended baseline).
    pub loss_rates: Vec<f64>,
    /// Mean route changes per AS that had been routing via the poisoned AS
    /// (Table 2's U for affected routers).
    pub u_affected: f64,
    /// Mean route changes per unaffected AS.
    pub u_unaffected: f64,
    /// Fraction of unaffected peers that made at most one route change
    /// (prepended baseline; paper: 97% single-update).
    pub single_update_unaffected: f64,
}

impl ConvergenceResult {
    /// Median global convergence (ms) for the given baseline.
    pub fn global_median(&self, prepend: bool) -> u64 {
        let mut v = if prepend {
            self.global_prepend.clone()
        } else {
            self.global_plain.clone()
        };
        v.sort_unstable();
        percentile(&v, 0.5)
    }

    /// Fraction of poisonings with loss rate under `cap`.
    pub fn loss_under(&self, cap: f64) -> f64 {
        if self.loss_rates.is_empty() {
            return 0.0;
        }
        let n = self.loss_rates.iter().filter(|l| **l < cap).count();
        n as f64 / self.loss_rates.len() as f64
    }
}

/// Configuration of the study.
#[derive(Clone, Debug)]
pub struct ConvergenceConfig {
    /// Topology to generate.
    pub topo: TopologyConfig,
    /// Collector-peer population.
    pub observers: usize,
    /// Poison targets to try.
    pub max_poisons: usize,
    /// Vantage ASes probing the data plane for loss.
    pub loss_probers: usize,
    /// Loss probing interval (simulated ms); the paper probes every 10 s.
    pub probe_interval_ms: u64,
}

impl ConvergenceConfig {
    /// A configuration sized for `cargo bench`.
    pub fn standard(seed: u64) -> Self {
        ConvergenceConfig {
            topo: TopologyConfig::medium(seed),
            observers: 150,
            max_poisons: 25,
            loss_probers: 60,
            probe_interval_ms: 10_000,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ConvergenceConfig {
            topo: TopologyConfig::small(seed),
            observers: 20,
            max_poisons: 5,
            loss_probers: 10,
            probe_interval_ms: 10_000,
        }
    }
}

/// Run the convergence study.
pub fn run_convergence(cfg: &ConvergenceConfig) -> ConvergenceResult {
    // Single-provider origin, like the Georgia Tech deployment.
    let world: MuxWorld = mux_world(&cfg.topo, 1, cfg.observers);
    let prefix = production_prefix();
    let net = &world.net;

    // Static what-if tables are memoized: each poison target's table is
    // needed for both the prepended and plain baseline passes below.
    let mut cache = lg_sim::RouteTableCache::new();

    // Harvest poison targets from the static baseline.
    let base_table = cache.compute(
        net,
        &AnnouncementSpec::prepended(net, prefix, world.origin, 3),
    );
    // The Cogent rule: never poison the origin's own providers.
    let targets = harvest_poison_targets(
        net.graph(),
        &base_table,
        &world.collector_peers,
        &world.providers,
    );

    let mut out = ConvergenceResult::default();
    let mut affected_changes: Vec<u64> = Vec::new();
    let mut unaffected_changes: Vec<u64> = Vec::new();
    let mut unaffected_single = (0usize, 0usize);

    for a in targets.into_iter().take(cfg.max_poisons) {
        for prepend in [true, false] {
            let baseline = if prepend {
                AnnouncementSpec::prepended(net, prefix, world.origin, 3)
            } else {
                AnnouncementSpec::plain(net, prefix, world.origin)
            };
            let poisoned = AnnouncementSpec::poisoned(net, prefix, world.origin, &[a]);

            let mut sim = DynamicSim::new(net, DynamicSimConfig::default());
            sim.announce(&baseline);
            sim.run_until_quiescent(Time::from_mins(60));
            debug_assert!(sim.quiescent());

            // Record pre-poison routes of the observers.
            let pre_routes: Vec<(AsId, bool)> = world
                .collector_peers
                .iter()
                .filter_map(|p| sim.loc_route(*p, prefix).map(|r| (*p, r.traverses(a))))
                .collect();
            // Loss probers: peers with pre-poison routes that survive the
            // poison (the paper excludes completely cut-off sites).
            let post_static = cache.compute(net, &poisoned);
            let probers: Vec<AsId> = pre_routes
                .iter()
                .map(|(p, _)| *p)
                .filter(|p| post_static.has_route(*p))
                .take(cfg.loss_probers)
                .collect();

            let t_poison = sim.now();
            sim.begin_epoch(prefix);
            sim.announce(&poisoned);

            // Interleave convergence with data-plane probing.
            let mut sent = 0u64;
            let mut lost = 0u64;
            let deadline = t_poison + 600_000;
            let mut t = t_poison;
            while !sim.quiescent() && t < deadline {
                t += cfg.probe_interval_ms;
                sim.run_until(t);
                if prepend {
                    for p in &probers {
                        sent += 1;
                        let w = sim.walk(*p, prefix.nth_addr(1));
                        if !w.outcome.delivered() {
                            lost += 1;
                        }
                    }
                }
            }
            sim.run_until_quiescent(Time(deadline.millis() + 3_600_000));

            let metrics = sim.metrics(prefix);
            for (p, was_via_a) in &pre_routes {
                let conv = metrics.convergence_ms(*p).unwrap_or(0);
                let arm = match (prepend, was_via_a) {
                    (true, true) => &mut out.prepend_change,
                    (true, false) => &mut out.prepend_nochange,
                    (false, true) => &mut out.plain_change,
                    (false, false) => &mut out.plain_nochange,
                };
                arm.samples.push(conv);
                if prepend {
                    let changes = metrics.loc_changes.get(p).copied().unwrap_or(0);
                    if *was_via_a {
                        affected_changes.push(changes);
                    } else {
                        unaffected_changes.push(changes);
                        unaffected_single.1 += 1;
                        if changes <= 1 {
                            unaffected_single.0 += 1;
                        }
                    }
                }
            }
            let global = metrics.global_convergence_ms().unwrap_or(0);
            if prepend {
                out.global_prepend.push(global);
                if sent > 0 {
                    out.loss_rates.push(lost as f64 / sent as f64);
                }
            } else {
                out.global_plain.push(global);
            }
        }
    }

    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    out.u_affected = mean(&affected_changes);
    out.u_unaffected = mean(&unaffected_changes);
    out.single_update_unaffected = if unaffected_single.1 == 0 {
        0.0
    } else {
        unaffected_single.0 as f64 / unaffected_single.1 as f64
    };
    out
}

/// The Fig 6 table.
pub fn fig6_table(r: &ConvergenceResult) -> Table {
    let mut t = Table::new(
        "Fig 6: peer convergence after poisoned announcements",
        &[
            "arm",
            "instant",
            "<=50s",
            "<=200s",
            "samples",
            "paper anchor",
        ],
    );
    let rows: [(&str, &ArmStats, &str); 4] = [
        (
            "prepend, no change",
            &r.prepend_nochange,
            ">95% instant, 99% <=50s",
        ),
        (
            "no prepend, no change",
            &r.plain_nochange,
            "<70% instant, 94% <=50s",
        ),
        ("prepend, change", &r.prepend_change, "96% <=50s"),
        ("no prepend, change", &r.plain_change, "86% <=50s"),
    ];
    for (label, arm, anchor) in rows {
        t.row(&[
            label.into(),
            pct(arm.frac_instant()),
            pct(arm.frac_within(50_000)),
            pct(arm.frac_within(200_000)),
            arm.len().to_string(),
            anchor.into(),
        ]);
    }
    t
}

/// The §5.2 disruption table (global convergence + loss).
pub fn disruption_table(r: &ConvergenceResult) -> Table {
    let mut t = Table::new(
        "§5.2 Disruptiveness: global convergence and loss during convergence",
        &["metric", "paper", "measured"],
    );
    t.row(&[
        "median global convergence (prepend)".into(),
        "<=91s".into(),
        format!("{:.0}s", r.global_median(true) as f64 / 1000.0),
    ]);
    t.row(&[
        "median global convergence (no prepend)".into(),
        "133s".into(),
        format!("{:.0}s", r.global_median(false) as f64 / 1000.0),
    ]);
    t.row(&[
        "poisonings with <1% loss".into(),
        "60%".into(),
        pct(r.loss_under(0.01)),
    ]);
    t.row(&[
        "poisonings with <2% loss".into(),
        "98%".into(),
        pct(r.loss_under(0.02)),
    ]);
    t.row(&[
        "unaffected peers with single update".into(),
        "97%".into(),
        pct(r.single_update_unaffected),
    ]);
    t.row(&[
        "U (route changes/router, affected)".into(),
        "2.03".into(),
        format!("{:.2}", r.u_affected),
    ]);
    t.row(&[
        "U (route changes/router, unaffected)".into(),
        "1.07".into(),
        format!("{:.2}", r.u_unaffected),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_convergence_study_has_paper_shape() {
        let r = run_convergence(&ConvergenceConfig::tiny(3));
        assert!(!r.prepend_nochange.is_empty());
        assert!(!r.plain_nochange.is_empty());
        // The core claim: prepending beats the plain baseline for
        // unaffected peers.
        assert!(
            r.prepend_nochange.frac_instant() >= r.plain_nochange.frac_instant(),
            "prepend {} vs plain {}",
            r.prepend_nochange.frac_instant(),
            r.plain_nochange.frac_instant()
        );
        assert!(
            r.prepend_nochange.frac_instant() > 0.8,
            "instant fraction {}",
            r.prepend_nochange.frac_instant()
        );
        // Everyone converges within the run window.
        assert!(r.prepend_change.is_empty() || r.prepend_change.frac_within(600_000) == 1.0);
        // Loss rates are valid fractions.
        assert!(r.loss_under(1.01) == 1.0);
    }

    #[test]
    fn arm_stats_fractions() {
        let arm = ArmStats {
            samples: vec![0, 0, 40_000, 100_000],
        };
        assert_eq!(arm.frac_instant(), 0.5);
        assert_eq!(arm.frac_within(50_000), 0.75);
        assert_eq!(arm.frac_within(100_000), 1.0);
        assert_eq!(arm.len(), 4);
    }
}
