//! Loading and saving AS graphs in the CAIDA serial-1 relationship format.
//!
//! The de-facto interchange format for AS-relationship datasets (and the
//! kind of input the paper's own topology was assembled from) is one line
//! per link:
//!
//! ```text
//! # comments start with '#'
//! <provider-as>|<customer-as>|-1
//! <peer-as>|<peer-as>|0
//! ```
//!
//! [`parse_relationships`] builds an [`AsGraph`] from that format (AS
//! numbers are remapped to dense ids; the mapping is returned), and
//! [`to_relationships`] serializes a graph back, so generated topologies
//! can be exported to external tools.

use crate::graph::{AsGraph, GraphBuilder};
use crate::ids::AsId;
use crate::relationship::Relationship;
use std::collections::HashMap;
use std::fmt;

/// Parse error with line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseRelError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseRelError {}

/// Result of parsing: the graph plus the original-ASN ↔ dense-id mapping.
#[derive(Debug)]
pub struct ParsedGraph {
    /// The graph over dense ids.
    pub graph: AsGraph,
    /// Dense id → original AS number.
    pub original_asn: Vec<u32>,
    /// Original AS number → dense id.
    pub id_of: HashMap<u32, AsId>,
}

/// Parse CAIDA serial-1 relationship text into a graph.
pub fn parse_relationships(text: &str) -> Result<ParsedGraph, ParseRelError> {
    let mut id_of: HashMap<u32, AsId> = HashMap::new();
    let mut original_asn: Vec<u32> = Vec::new();
    let mut links: Vec<(AsId, AsId, Relationship)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('|');
        let err = |message: String| ParseRelError {
            line: line_no,
            message,
        };
        let a: u32 = parts
            .next()
            .ok_or_else(|| err("missing first AS".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad AS number: {e}")))?;
        let b: u32 = parts
            .next()
            .ok_or_else(|| err("missing second AS".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad AS number: {e}")))?;
        let rel_code = parts
            .next()
            .ok_or_else(|| err("missing relationship code".into()))?
            .trim();
        if a == b {
            return Err(err(format!("self-link on AS{a}")));
        }
        let mut intern = |asn: u32| -> AsId {
            *id_of.entry(asn).or_insert_with(|| {
                let id = AsId(original_asn.len() as u32);
                original_asn.push(asn);
                id
            })
        };
        let ia = intern(a);
        let ib = intern(b);
        let rel = match rel_code {
            // a is the provider of b.
            "-1" => Relationship::Customer,
            "0" => Relationship::Peer,
            other => return Err(err(format!("unknown relationship code {other:?}"))),
        };
        links.push((ia, ib, rel));
    }

    let mut b = GraphBuilder::with_ases(original_asn.len());
    for (ia, ib, rel) in links {
        if b.are_adjacent(ia, ib) {
            return Err(ParseRelError {
                line: 0,
                message: format!(
                    "duplicate link AS{}-AS{}",
                    original_asn[ia.index()],
                    original_asn[ib.index()]
                ),
            });
        }
        b.link(ia, ib, rel);
    }
    Ok(ParsedGraph {
        graph: b.build(),
        original_asn,
        id_of,
    })
}

/// Serialize a graph to the CAIDA serial-1 format (dense ids as ASNs).
pub fn to_relationships(graph: &AsGraph) -> String {
    let mut out = String::from("# <provider-as>|<customer-as>|-1  or  <peer-as>|<peer-as>|0\n");
    for a in graph.ases() {
        for (b, rel) in graph.neighbors(a) {
            match rel {
                Relationship::Customer => {
                    out.push_str(&format!("{}|{}|-1\n", a.0, b.0));
                }
                Relationship::Peer if a < *b => {
                    out.push_str(&format!("{}|{}|0\n", a.0, b.0));
                }
                _ => {} // the other direction emits the line
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# tier-1 clique
174|3356|0
# transit
174|7018|-1
3356|7018|-1
7018|398465|-1
";

    #[test]
    fn parse_sample() {
        let parsed = parse_relationships(SAMPLE).unwrap();
        assert_eq!(parsed.graph.len(), 4);
        assert_eq!(parsed.graph.edge_count(), 4);
        let id174 = parsed.id_of[&174];
        let id3356 = parsed.id_of[&3356];
        let id7018 = parsed.id_of[&7018];
        let stub = parsed.id_of[&398_465];
        assert_eq!(
            parsed.graph.relationship(id174, id3356),
            Some(Relationship::Peer)
        );
        assert_eq!(
            parsed.graph.relationship(id174, id7018),
            Some(Relationship::Customer)
        );
        assert!(parsed.graph.is_stub(stub));
        assert_eq!(parsed.original_asn[stub.index()], 398_465);
    }

    #[test]
    fn roundtrip_through_serialization() {
        let parsed = parse_relationships(SAMPLE).unwrap();
        let text = to_relationships(&parsed.graph);
        let again = parse_relationships(&text).unwrap();
        assert_eq!(again.graph.len(), parsed.graph.len());
        assert_eq!(again.graph.edge_count(), parsed.graph.edge_count());
        // Structure preserved under the (identity) dense remap.
        for a in parsed.graph.ases() {
            for (b, rel) in parsed.graph.neighbors(a) {
                assert_eq!(again.graph.relationship(a, *b), Some(*rel));
            }
        }
    }

    #[test]
    fn generated_topology_roundtrips() {
        let g = crate::gen::TopologyConfig::small(3).generate();
        let text = to_relationships(&g);
        let parsed = parse_relationships(&text).unwrap();
        assert_eq!(parsed.graph.len(), g.len());
        assert_eq!(parsed.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse_relationships("174|174|0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("self-link"));
        let e = parse_relationships("1|2|-1\nx|2|0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_relationships("1|2|7\n").unwrap_err();
        assert!(e.message.contains("unknown relationship"));
        let e = parse_relationships("1|2|-1\n1|2|0\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let parsed = parse_relationships("# hi\n\n  \n1|2|0\n").unwrap();
        assert_eq!(parsed.graph.len(), 2);
        assert_eq!(parsed.graph.edge_count(), 1);
    }
}
