//! LIFEGUARD reproduction — umbrella crate.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! one coherent namespace. See `README.md` for the tour and `DESIGN.md` for
//! the paper-to-module mapping.

pub mod json;
pub mod scenario;

pub use lg_asmap as asmap;
pub use lg_atlas as atlas;
pub use lg_bgp as bgp;
pub use lg_locate as locate;
pub use lg_probe as probe;
pub use lg_sim as sim;
pub use lg_workloads as workloads;
pub use lifeguard_core as lifeguard;
