//! Inter-AS business relationships in the Gao-Rexford model.

/// The relationship an AS has with a neighbor, from the AS's point of view.
///
/// `Customer` means "the neighbor is my customer" (I provide transit to it),
/// `Provider` means "the neighbor is my provider", and `Peer` is settlement-
/// free peering. Routes learned from customers are preferred over routes
/// learned from peers, which are preferred over routes learned from
/// providers, because customers pay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Relationship {
    /// The neighbor pays this AS for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// This AS pays the neighbor for transit.
    Provider,
}

impl Relationship {
    /// The relationship as seen from the other side of the link.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }

    /// BGP local-preference class: lower is more preferred.
    ///
    /// This is the first tiebreak of the decision process — an AS always
    /// prefers routes its customers announce over peer routes over provider
    /// routes, regardless of path length.
    pub fn pref_class(self) -> u8 {
        match self {
            Relationship::Customer => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
        }
    }

    /// Gao-Rexford export rule: may a route *learned over* `self` be exported
    /// to a neighbor related by `to`?
    ///
    /// Routes learned from customers (and locally originated routes, which
    /// callers handle separately) export everywhere; routes learned from
    /// peers or providers export only to customers.
    pub fn exportable_to(self, to: Relationship) -> bool {
        match self {
            Relationship::Customer => true,
            Relationship::Peer | Relationship::Provider => to == Relationship::Customer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Relationship::*;

    #[test]
    fn reverse_is_involution() {
        for r in [Customer, Peer, Provider] {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Customer.reverse(), Provider);
        assert_eq!(Peer.reverse(), Peer);
    }

    #[test]
    fn preference_orders_customer_first() {
        assert!(Customer.pref_class() < Peer.pref_class());
        assert!(Peer.pref_class() < Provider.pref_class());
    }

    #[test]
    fn export_rules_are_valley_free() {
        // Customer-learned routes go everywhere.
        assert!(Customer.exportable_to(Customer));
        assert!(Customer.exportable_to(Peer));
        assert!(Customer.exportable_to(Provider));
        // Peer- and provider-learned routes go only to customers.
        assert!(Peer.exportable_to(Customer));
        assert!(!Peer.exportable_to(Peer));
        assert!(!Peer.exportable_to(Provider));
        assert!(Provider.exportable_to(Customer));
        assert!(!Provider.exportable_to(Peer));
        assert!(!Provider.exportable_to(Provider));
    }
}
