//! Vendored offline stand-in for the slice of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the handful of primitives it needs under the same names and module paths:
//! `SmallRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer and
//! float ranges, and `SliceRandom::{shuffle, choose}`.
//!
//! `SmallRng` here is xoshiro256++ seeded via SplitMix64 — the same
//! construction rand 0.8 uses on 64-bit targets — so the statistical
//! properties the topology generator and workload samplers rely on
//! (uniformity, long period, cheap jumps) hold. Streams are deterministic
//! per seed but are **not** guaranteed to be bit-identical to upstream rand;
//! everything in-tree treats seeded streams as an implementation detail and
//! only requires determinism.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`; panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as Self)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Ranges a value can be drawn from (mirrors `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Unbiased uniform integer in `[0, span)` (`span == 0` means the full
/// 64-bit range) via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the multiply-shift reduction unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            let mut a2 = SmallRng::seed_from_u64(7);
            a2.gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=32);
            assert!(w <= 32);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
