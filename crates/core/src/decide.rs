//! Repair planning: whether and how to poison (§4.2, §3.1).
//!
//! Given an isolation blame, the planner produces the announcement that
//! implements `AVOID_PROBLEM(X, P)`:
//!
//! * it predicts *a priori* — by computing the post-poison routing fixed
//!   point over the known topology, the same simulation methodology the
//!   paper validates at 92.5% agreement against live poisonings — whether
//!   the monitored target would retain a route, and refuses to poison when
//!   no alternate policy-compliant path exists;
//! * it discovers leniently configured ASes (§7.1: accept one occurrence of
//!   their own ASN) by checking whether a single poison actually removes
//!   the AS's route in the predicted fixed point, and doubles the poison
//!   when needed;
//! * for link blames it searches for a *selective* poisoning (§3.1.2):
//!   poison via a subset of providers so the blamed AS sheds only the
//!   failing link while keeping a working route.

use crate::config::LifeguardConfig;
use lg_asmap::AsId;
use lg_locate::Blame;
use lg_sim::{effective_path, AnnouncementSpec, Network, SharedRouteCache};
use lg_telemetry::trace;

/// A concrete repair: the announcement to make and what it should achieve.
#[derive(Clone, Debug)]
pub struct RepairPlan {
    /// The new production announcement.
    pub spec: AnnouncementSpec,
    /// The AS inserted into the path.
    pub poisoned: AsId,
    /// Number of copies of the poisoned AS (2 for lenient loop detection).
    pub poison_copies: usize,
    /// Whether the poison is selective (differs per provider).
    pub selective: bool,
}

fn providers_of(net: &Network, cfg: &LifeguardConfig) -> Vec<AsId> {
    if cfg.providers.is_empty() {
        net.graph()
            .neighbors(cfg.origin)
            .iter()
            .map(|(n, _)| *n)
            .collect()
    } else {
        cfg.providers.clone()
    }
}

/// Does the repair announcement survive import at at least one provider?
///
/// A poisoned path can trip the *providers' own* filters before it ever
/// propagates: the split origin `O-A-O` is exactly the signature a
/// poisoned-announcement drop matches, a doubled poison (`O-A-A-O`, for
/// lenient loop detection) can exceed a provider's max-path-length cap,
/// and an unlucky culprit ASN can hit a reserved-ASN drop. When *every*
/// provider rejects the seed the repair never enters the routing system
/// at all; that is a different failure from "no alternate path exists"
/// and the operator needs to know which one happened.
fn providers_accept(net: &Network, spec: &AnnouncementSpec) -> Result<(), String> {
    let mut rejections = Vec::new();
    for (nbr, path) in &spec.seeds {
        let Some(rel) = net.graph().relationship(*nbr, spec.origin) else {
            continue;
        };
        match net
            .policy(*nbr)
            .evaluate(*nbr, net.peers_of(*nbr), rel, path)
        {
            None => return Ok(()),
            Some(reason) => rejections.push(format!("{nbr} ({reason:?})")),
        }
    }
    Err(format!(
        "repair announcement filtered at every provider: {}",
        rejections.join(", ")
    ))
}

/// Can `target` actually deliver traffic to the origin while avoiding
/// `culprit`, in the predicted post-repair fixed point? Checks the
/// data-plane chain ([`effective_path`]), not mere route presence: a
/// target whose BGP route vanished may still forward over default routes
/// (and then the repair works), or may forward *into the culprit* over a
/// default route (and then the repair silently fails — Smith et al.'s
/// default-route throttling of poisoning).
fn target_repaired(
    net: &Network,
    table: &lg_sim::RouteTable,
    target: AsId,
    culprit: AsId,
) -> Result<(), String> {
    match effective_path(net, table, target) {
        None => Err(format!(
            "no alternate policy-compliant path for {target} avoiding {culprit}"
        )),
        Some(path) if path.contains(&culprit) => Err(format!(
            "{target} still forwards through {culprit} over a default route; \
             poisoning cannot repair it"
        )),
        Some(_) => Ok(()),
    }
}

/// Plan a repair for `target` given `blame`. Returns `Err(reason)` when
/// poisoning should not be attempted.
pub fn plan_repair(
    net: &Network,
    cfg: &LifeguardConfig,
    blame: Blame,
    target: AsId,
) -> Result<RepairPlan, String> {
    plan_repair_cached(net, cfg, blame, target, &SharedRouteCache::new())
}

/// [`plan_repair`] against a shared table cache: the running system plans
/// repeatedly over one (unchanging) network, so the predicted fixed points
/// — often the same specs across outages and ticks — memoize well, and the
/// sharded cache lets concurrent systems on one topology share them.
pub fn plan_repair_cached(
    net: &Network,
    cfg: &LifeguardConfig,
    blame: Blame,
    target: AsId,
    cache: &SharedRouteCache,
) -> Result<RepairPlan, String> {
    let culprit = blame.poison_target();
    if culprit == cfg.origin {
        return Err("failure is in our own network; fix locally".into());
    }
    if culprit == target {
        return Err("failure is inside the destination AS; poisoning cannot help".into());
    }
    let providers = providers_of(net, cfg);
    if providers.contains(&culprit) && providers.len() == 1 {
        return Err("culprit is our only provider; poisoning would cut us off".into());
    }

    // Selective poisoning first when the blame is a link and we have the
    // provider diversity for it.
    if let Blame::Link(a, b) = blame {
        if providers.len() >= 2 {
            if let Some(plan) = try_selective(net, cfg, &providers, a, b, target, cache) {
                return Ok(plan);
            }
        }
    }

    // Global poison; discover the needed poison count (1, or 2 for lenient
    // loop detection) from the predicted fixed point.
    for copies in 1..=2usize {
        let poisons = vec![culprit; copies];
        let spec = AnnouncementSpec::via(
            cfg.production,
            cfg.origin,
            lg_bgp::AsPath::poisoned(cfg.origin, &poisons),
            &providers,
        );
        let table = cache.compute(net, &spec);
        if table.has_route(culprit) {
            // Poison did not stick (lenient loop detection): double it.
            if trace::enabled() {
                trace::annot_str(
                    "plan.candidate_rejected",
                    &format!("global x{copies}: poison did not stick at {culprit}"),
                );
            }
            continue;
        }
        if let Err(e) = providers_accept(net, &spec) {
            trace::annot_str("plan.candidate_rejected", &e);
            return Err(e);
        }
        if let Err(e) = target_repaired(net, &table, target, culprit) {
            trace::annot_str("plan.candidate_rejected", &e);
            return Err(e);
        }
        if trace::enabled() {
            trace::annot_str(
                "plan.accepted",
                &format!("global x{copies} poison of {culprit}"),
            );
        }
        return Ok(RepairPlan {
            spec,
            poisoned: culprit,
            poison_copies: copies,
            selective: false,
        });
    }
    let reason = format!("{culprit} accepts paths containing itself; poison cannot stick");
    trace::annot_str("plan.candidate_rejected", &reason);
    Err(reason)
}

/// Search for a selective poisoning that steers `a` off the link `a`-`b`
/// without cutting `a` (or the target) off: poison `a` on announcements via
/// some providers, announce clean via the rest, and accept the first
/// configuration whose predicted fixed point has `a` routed around `b`.
fn try_selective(
    net: &Network,
    cfg: &LifeguardConfig,
    providers: &[AsId],
    a: AsId,
    b: AsId,
    target: AsId,
    cache: &SharedRouteCache,
) -> Option<RepairPlan> {
    // Candidate poison_via sets: each single provider, then each
    // complement-of-one (poison everywhere except one provider).
    let mut candidates: Vec<Vec<AsId>> = providers.iter().map(|p| vec![*p]).collect();
    if providers.len() > 2 {
        for keep_clean in providers {
            candidates.push(
                providers
                    .iter()
                    .copied()
                    .filter(|p| p != keep_clean)
                    .collect(),
            );
        }
    }
    for poison_via in candidates {
        // Per-candidate reject reasons go to the flight recorder so a
        // trace answers "why was selective poisoning skipped here?".
        let reject = |why: &str| {
            if trace::enabled() {
                trace::annot_str(
                    "plan.selective_rejected",
                    &format!("via {poison_via:?}: {why}"),
                );
            }
        };
        let spec =
            AnnouncementSpec::selective_poison(net, cfg.production, cfg.origin, &[a], &poison_via);
        let table = cache.compute(net, &spec);
        let Some(a_path) = table.as_path(a) else {
            reject("culprit lost its route entirely");
            continue; // a lost its route entirely: not selective enough
        };
        // a must now route around the failing link: its path no longer
        // crosses b.
        if a_path.contains(&b) {
            reject("culprit still routes across the failed link");
            continue;
        }
        // The *target's* forwarding chain must avoid the failed link too.
        // Steering `a` off `a`-`b` does not stop the target from reaching
        // the origin over the dead adjacency from the other side (e.g. via
        // `b`'s customer-cone route through `a`), and route presence alone
        // cannot see that: the selective plan would predict success while
        // the target's traffic dies on the failed link.
        let Some(t_path) = effective_path(net, &table, target) else {
            reject("no effective path for the target");
            continue;
        };
        if t_path
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
        {
            reject("target still forwards over the failed link");
            continue;
        }
        if trace::enabled() {
            trace::annot_str(
                "plan.accepted",
                &format!("selective poison of {a} via {poison_via:?}"),
            );
        }
        return Some(RepairPlan {
            spec,
            poisoned: a,
            poison_copies: 1,
            selective: true,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SentinelStrategy;
    use lg_asmap::GraphBuilder;
    use lg_bgp::{ImportPolicy, LoopDetection, Prefix};
    use lg_sim::compute_routes;

    fn pfx() -> Prefix {
        Prefix::from_octets(184, 164, 224, 0, 20)
    }

    fn cfg(origin: AsId, providers: Vec<AsId>) -> LifeguardConfig {
        let mut c = LifeguardConfig::paper_defaults(
            origin,
            pfx(),
            Prefix::from_octets(184, 164, 224, 0, 19),
        );
        c.providers = providers;
        c
    }

    /// Fig 2-like: O(0) under B(2); B under C(3) and A(1); C under D(4); A
    /// and D under E(5); F(6) under A.
    fn fig2() -> Network {
        let mut g = GraphBuilder::with_ases(7);
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(2));
        g.provider_customer(AsId(1), AsId(2));
        g.provider_customer(AsId(4), AsId(3));
        g.provider_customer(AsId(5), AsId(1));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(1));
        Network::new(g.build())
    }

    #[test]
    fn global_poison_with_alternate_path() {
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.poisoned, AsId(1));
        assert_eq!(plan.poison_copies, 1);
        assert!(!plan.selective);
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(1)));
        assert!(table.has_route(AsId(5)), "E rerouted via D");
    }

    #[test]
    fn refuses_when_target_captive() {
        // F(6) is captive behind A(1): no poison can restore it.
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let err = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(6)).unwrap_err();
        assert!(err.contains("no alternate"), "{err}");
    }

    #[test]
    fn refuses_culprit_in_destination() {
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        assert!(plan_repair(&net, &c, Blame::As(AsId(5)), AsId(5)).is_err());
    }

    #[test]
    fn refuses_sole_provider() {
        let net = fig2();
        let c = cfg(AsId(0), vec![AsId(2)]);
        let err = plan_repair(&net, &c, Blame::As(AsId(2)), AsId(5)).unwrap_err();
        assert!(err.contains("only provider"), "{err}");
    }

    #[test]
    fn doubles_poison_for_lenient_loop_detection() {
        let mut net = fig2();
        net.set_policy(
            AsId(1),
            ImportPolicy {
                loop_detection: LoopDetection::max_occurrences(1),
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.poison_copies, 2);
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(1)));
    }

    #[test]
    fn gives_up_when_loop_detection_disabled() {
        let mut net = fig2();
        net.set_policy(
            AsId(1),
            ImportPolicy {
                loop_detection: LoopDetection::disabled(),
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let err = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap_err();
        assert!(err.contains("cannot stick"), "{err}");
    }

    /// Fig 3 world: O(0) with providers D1(1), D2(2); B1(3) over D1, B2(4)
    /// over D2; A(5) over both B1 and B2; C3(6) behind A.
    fn fig3() -> Network {
        let mut g = GraphBuilder::with_ases(7);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(1));
        g.provider_customer(AsId(4), AsId(2));
        g.provider_customer(AsId(5), AsId(3));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(5));
        Network::new(g.build())
    }

    #[test]
    fn selective_poison_avoids_link_keeping_a_routed() {
        let net = fig3();
        let c = cfg(AsId(0), vec![AsId(1), AsId(2)]);
        // Blame the link A(5)-B2(4).
        let plan = plan_repair(&net, &c, Blame::Link(AsId(5), AsId(4)), AsId(6)).unwrap();
        assert!(plan.selective);
        let table = compute_routes(&net, &plan.spec);
        // A keeps a route, now via B1, and so does its captive C3.
        let a_path = table.as_path(AsId(5)).unwrap();
        assert!(!a_path.contains(&AsId(4)), "A must avoid B2: {a_path:?}");
        assert!(a_path.contains(&AsId(3)), "A now routes via B1: {a_path:?}");
        assert!(table.has_route(AsId(6)));
        // B2 itself keeps its (clean) route via D2.
        assert_eq!(table.next_hop(AsId(4)), Some(AsId(2)));
    }

    #[test]
    fn selective_falls_back_to_global_without_disjoint_paths() {
        // Single-provider topology: selective impossible; link blame should
        // fall back to a global poison of A if alternates exist, or error.
        let net = fig2();
        let c = cfg(AsId(0), vec![AsId(2)]);
        // Culprit A(1)-E(5) link; only provider is B(2): global poison of A.
        let plan = plan_repair(&net, &c, Blame::Link(AsId(1), AsId(5)), AsId(5));
        // Global poison of A restores E via D.
        let plan = plan.unwrap();
        assert!(!plan.selective);
        assert_eq!(plan.poisoned, AsId(1));
    }

    #[test]
    fn surfaces_repair_filtered_at_every_provider() {
        // Poison-drop filters at both providers: the split-origin repair
        // announcement never enters the routing system. The planner must
        // say *that*, not the misleading "no alternate path".
        let mut net = fig3();
        for p in [AsId(1), AsId(2)] {
            net.set_policy(
                p,
                ImportPolicy {
                    drop_poisoned: true,
                    ..ImportPolicy::standard()
                },
            );
        }
        let c = cfg(AsId(0), vec![AsId(1), AsId(2)]);
        let err = plan_repair(&net, &c, Blame::As(AsId(3)), AsId(5)).unwrap_err();
        assert!(err.contains("filtered at every provider"), "{err}");
        assert!(err.contains("Poisoned"), "{err}");
    }

    #[test]
    fn cap_blocks_doubled_poison_and_is_reported() {
        // A lenient culprit (§7.1) needs the doubled poison O-A-A-O, but
        // that path is one hop longer than the single poison — and here it
        // exceeds the sole provider's max-path-length cap. The cap must not
        // pass unnoticed: the planner reports the repair as filtered.
        let mut net = fig2();
        net.set_policy(
            AsId(1),
            ImportPolicy {
                loop_detection: LoopDetection::max_occurrences(1),
                ..ImportPolicy::standard()
            },
        );
        net.set_policy(
            AsId(2),
            ImportPolicy {
                max_path_len: Some(3),
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let err = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap_err();
        assert!(err.contains("filtered at every provider"), "{err}");
        assert!(err.contains("PathLenCap"), "{err}");
    }

    #[test]
    fn selective_plan_must_keep_target_off_the_failed_link() {
        // O(0) multihomed under X(1) and A(2); B(3) above A; T(4) behind B;
        // Top(5) above X and B. The A-B link fails, target is T.
        //
        // Poisoning A via X only looks selective-perfect: A keeps its
        // direct customer route to O (avoiding B), and T still *has* a
        // route — but that route is B's customer-cone path through A, so
        // T's traffic crosses the dead A-B link. The planner must reject
        // that candidate and fall back to the global poison, which reroutes
        // T via Top - X.
        let mut g = GraphBuilder::with_ases(6);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(2));
        g.provider_customer(AsId(3), AsId(4));
        g.provider_customer(AsId(5), AsId(1));
        g.provider_customer(AsId(5), AsId(3));
        let net = Network::new(g.build());
        let c = cfg(AsId(0), vec![AsId(1), AsId(2)]);
        let plan = plan_repair(&net, &c, Blame::Link(AsId(2), AsId(3)), AsId(4)).unwrap();
        assert!(
            !plan.selective,
            "selective plan would leave T forwarding over the dead link"
        );
        assert_eq!(plan.poisoned, AsId(2));
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(2)));
        let t_path = effective_path(&net, &table, AsId(4)).unwrap();
        assert_eq!(
            t_path,
            vec![AsId(4), AsId(3), AsId(5), AsId(1), AsId(0)],
            "T reroutes around the failure via Top and X"
        );
    }

    #[test]
    fn default_route_into_culprit_is_a_failed_repair() {
        // O(0) under P1(1) and P2(2); culprit C(3) above P1; stub T(4)
        // under C; Top(5) above C and P2. T defaults at C and C defaults
        // up to Top. Poisoning C removes every BGP route through it, but
        // T's *traffic* still enters C on the default chain — the repair
        // does not restore T and must not be reported as a success.
        let mut g = GraphBuilder::with_ases(6);
        g.provider_customer(AsId(1), AsId(0));
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(1));
        g.provider_customer(AsId(3), AsId(4));
        g.provider_customer(AsId(5), AsId(3));
        g.provider_customer(AsId(5), AsId(2));
        let mut net = Network::new(g.build());
        for a in [AsId(3), AsId(4)] {
            net.set_policy(
                a,
                ImportPolicy {
                    default_route: true,
                    ..ImportPolicy::standard()
                },
            );
        }
        let c = cfg(AsId(0), vec![AsId(1), AsId(2)]);
        let err = plan_repair(&net, &c, Blame::As(AsId(3)), AsId(4)).unwrap_err();
        assert!(err.contains("still forwards through"), "{err}");
        assert!(err.contains("default route"), "{err}");
    }

    #[test]
    fn default_route_chain_can_rescue_a_repair() {
        // G(7) under D(4) drops poisoned announcements, so it (and its stub
        // T(8)) holds no BGP route for the repaired prefix. But both point
        // defaults upward, and the default chain reaches D's repaired route
        // without touching the culprit C(3): the repair *works* on the data
        // plane. Requiring `has_route` would wrongly refuse it.
        let mut g = GraphBuilder::with_ases(9);
        g.provider_customer(AsId(2), AsId(0));
        g.provider_customer(AsId(3), AsId(2));
        g.provider_customer(AsId(1), AsId(2));
        g.provider_customer(AsId(4), AsId(3));
        g.provider_customer(AsId(5), AsId(1));
        g.provider_customer(AsId(5), AsId(4));
        g.provider_customer(AsId(6), AsId(1));
        g.provider_customer(AsId(4), AsId(7));
        g.provider_customer(AsId(7), AsId(8));
        let mut net = Network::new(g.build());
        net.set_policy(
            AsId(7),
            ImportPolicy {
                drop_poisoned: true,
                default_route: true,
                ..ImportPolicy::standard()
            },
        );
        net.set_policy(
            AsId(8),
            ImportPolicy {
                default_route: true,
                ..ImportPolicy::standard()
            },
        );
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(3)), AsId(8)).unwrap();
        assert!(!plan.selective);
        assert_eq!(plan.poisoned, AsId(3));
        let table = compute_routes(&net, &plan.spec);
        assert!(!table.has_route(AsId(8)), "T holds no BGP route");
        let t_path = effective_path(&net, &table, AsId(8)).unwrap();
        assert!(
            !t_path.contains(&AsId(3)),
            "default chain avoids the culprit: {t_path:?}"
        );
    }

    #[test]
    fn sentinel_strategy_is_not_part_of_repair_spec() {
        // The production spec must target only the production prefix.
        let net = fig2();
        let c = cfg(AsId(0), vec![]);
        let plan = plan_repair(&net, &c, Blame::As(AsId(1)), AsId(5)).unwrap();
        assert_eq!(plan.spec.prefix, c.production);
        assert!(matches!(c.sentinel, SentinelStrategy::LessSpecific { .. }));
    }
}
