//! Mutation fuzz for the route-table cache under filter-policy churn.
//!
//! The scoped invalidation machinery (`DirtyScope`) decides, per mutation,
//! which cached fixed points can still be trusted. The filter layer raised
//! the stakes: policy edits classify as Unchanged / Footprint / Global,
//! peer-link surgery under `reject_peers_in_customer_path` uses the
//! link-precise `PeerLinkDown` / `LinkUp` predicates, and
//! `apply_filter_assignment` batches a whole deployment into one record.
//! Any under-eviction is silent route corruption, so this harness drives
//! randomized interleavings of filter edits, deployment draws, link
//! surgery, and cache lookups, and checks every cache answer against a
//! fresh `compute_routes` *and* the verbatim `compute_routes_reference`
//! oracle. Failures print the offending `(seed, op index)` for replay.

use lifeguard_repro::asmap::{AsId, Relationship, TopologyConfig};
use lifeguard_repro::bgp::Prefix;
use lifeguard_repro::sim::static_routes::compute_routes_reference;
use lifeguard_repro::sim::{compute_routes, AnnouncementSpec, Network, RouteTableCache};
use lifeguard_repro::workloads::FilterMatrix;

fn pfx() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

/// splitmix64 — deterministic op stream per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn pick_origin(net: &Network) -> AsId {
    net.graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .or_else(|| net.graph().ases().find(|a| net.graph().is_stub(*a)))
        .expect("generated topology has stubs")
}

fn all_links(net: &Network) -> Vec<(AsId, AsId, Relationship)> {
    let mut links = Vec::new();
    for a in net.graph().ases() {
        for (b, rel) in net.graph().neighbors(a) {
            if a.0 < b.0 {
                links.push((a, *b, *rel));
            }
        }
    }
    links
}

fn spec_for(net: &Network, rng: &mut Rng, origin: AsId) -> AnnouncementSpec {
    let n = net.len() as u64;
    match rng.below(4) {
        0 => AnnouncementSpec::plain(net, pfx(), origin),
        1 => AnnouncementSpec::prepended(net, pfx(), origin, 1 + rng.below(6) as usize),
        2 => AnnouncementSpec::poisoned(net, pfx(), origin, &[AsId(rng.below(n) as u32)]),
        _ => {
            let t1 = AsId(rng.below(n) as u32);
            let t2 = AsId(rng.below(n) as u32);
            AnnouncementSpec::poisoned(net, pfx(), origin, &[t1, t2])
        }
    }
}

/// One random filter-field edit at one AS, preserving the rest of its
/// policy (the way the planner and the scenario knobs edit policies).
fn edit_policy(net: &mut Network, rng: &mut Rng) {
    let a = AsId(rng.below(net.len() as u64) as u32);
    let mut p = net.policy(a).clone();
    match rng.below(5) {
        0 => {
            p.max_path_len = match p.max_path_len {
                Some(_) => None,
                None => Some(3 + rng.below(6) as u8),
            }
        }
        1 => p.drop_poisoned = !p.drop_poisoned,
        2 => p.drop_reserved_asn = !p.drop_reserved_asn,
        3 => p.reject_peers_in_customer_path = !p.reject_peers_in_customer_path,
        _ => p.default_route = !p.default_route,
    }
    net.set_policy(a, p);
}

fn check(
    seed: u64,
    op: usize,
    net: &Network,
    cache: &mut RouteTableCache,
    origin: AsId,
    rng: &mut Rng,
) {
    let spec = spec_for(net, rng, origin);
    let cached = cache.compute(net, &spec);
    let scratch = compute_routes(net, &spec);
    let reference = compute_routes_reference(net, &spec);
    for a in net.graph().ases() {
        assert_eq!(
            cached.route(a),
            scratch.route(a),
            "seed {seed} op {op}: cache diverges from scratch at {a} \
             (spec origin {origin}, path {:?})",
            spec.seeds.first().map(|(_, p)| p),
        );
        assert_eq!(
            scratch.route(a),
            reference.route(a),
            "seed {seed} op {op}: static engine diverges from reference at {a}",
        );
    }
}

#[test]
fn cache_survives_randomized_filter_and_link_churn() {
    // ~1k seeds keep the default suite fast; CI's filter-matrix job (and
    // local hunting) cranks the sweep via LG_FUZZ_SEEDS.
    let seeds: u64 = std::env::var("LG_FUZZ_SEEDS")
        .ok()
        .map(|v| v.parse().expect("LG_FUZZ_SEEDS must be an integer"))
        .unwrap_or(1000);
    let mut divergence_free_checks = 0u64;
    for seed in 0..seeds {
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xFEED);
        let mut net = Network::new(TopologyConfig::small(1 + seed % 16).generate());
        FilterMatrix::ALL[(seed % 4) as usize].apply(&mut net, seed);
        let origin = pick_origin(&net);
        let live = all_links(&net);
        let mut down: Vec<(AsId, AsId, Relationship)> = Vec::new();
        let mut cache = RouteTableCache::new();

        for op in 0..40 {
            match rng.below(8) {
                0 | 1 => edit_policy(&mut net, &mut rng),
                2 => {
                    let matrix = FilterMatrix::ALL[rng.below(4) as usize];
                    matrix.apply(&mut net, rng.next());
                }
                3 => {
                    let (a, b, rel) = live[rng.below(live.len() as u64) as usize];
                    if !down.iter().any(|&(x, y, _)| (x, y) == (a, b)) {
                        net.remove_link(a, b);
                        down.push((a, b, rel));
                    }
                }
                4 => {
                    if !down.is_empty() {
                        let (a, b, rel) = down.remove(rng.below(down.len() as u64) as usize);
                        net.add_link(a, b, rel);
                    }
                }
                _ => {
                    check(seed, op, &net, &mut cache, origin, &mut rng);
                    divergence_free_checks += 1;
                }
            }
        }
    }
    // The sweep must actually exercise cache reuse, not recompute always.
    assert!(
        divergence_free_checks > 500,
        "sweep ran suspiciously few checks: {divergence_free_checks}"
    );
}
