//! BGPFuzz-style randomized stress: arbitrary interleavings of announce
//! (plain / prepended / poisoned), withdraw, link failure, link restoration,
//! and clock advancement must always drive the event-driven engine to a
//! quiescent state whose per-AS selections match the static fixed point over
//! the surviving topology. This is the generalization of the hand-written
//! fail/restore scenarios: any sequence the repair machinery could issue,
//! in any order, against any generated topology.
//!
//! Sequences operate over a *pool* of prefixes (fuzzed 1..=4 here; the
//! calibrated matrix uses `LG_PREFIX_COUNT`, default 2, with a
//! covering/covered pair), each with its own announce/withdraw lifecycle,
//! and each checked against its own static fixed point at quiescence.
//! Parallel runs additionally sweep packed-vs-unpacked wire accounting:
//! the subject packs multi-prefix UPDATEs, the oracle doesn't, and every
//! observable must match anyway.

use lifeguard_repro::asmap::{AsId, TopologyConfig};
use lifeguard_repro::bgp::Prefix;
use lifeguard_repro::sim::Time;
use lifeguard_repro::sim::{
    compute_routes, AnnouncementSpec, DynamicSim, DynamicSimConfig, Network, OutQueue,
};
use lifeguard_repro::workloads::churn::{
    churn_network_sized, churn_prefixes, generate_ops, ChurnConfig, ChurnRunner, ChurnWorld,
};
use lifeguard_repro::workloads::{FilterMatrix, WorkerMatrix};
use proptest::prelude::*;

fn pick_origin(net: &Network) -> AsId {
    net.graph()
        .ases()
        .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
        .or_else(|| net.graph().ases().find(|a| net.graph().is_stub(*a)))
        .expect("generated topology has stubs")
}

fn pick_poison_target(net: &Network, origin: AsId) -> AsId {
    let providers = net.graph().providers(origin);
    let above = net.graph().providers(providers[0]);
    if above.is_empty() {
        providers[0]
    } else {
        above[0]
    }
}

/// All links of the graph as unordered pairs (a < b), in a deterministic
/// order so a fuzz index always names the same link for a given seed.
fn all_links(net: &Network) -> Vec<(AsId, AsId)> {
    let mut links = Vec::new();
    for a in net.graph().ases() {
        for (b, _) in net.graph().neighbors(a) {
            if a.0 < b.0 {
                links.push((a, *b));
            }
        }
    }
    links
}

fn make_spec(
    net: &Network,
    prefix: Prefix,
    shape: u8,
    origin: AsId,
    target: AsId,
) -> AnnouncementSpec {
    match shape % 3 {
        0 => AnnouncementSpec::plain(net, prefix, origin),
        1 => AnnouncementSpec::prepended(net, prefix, origin, 3),
        _ => AnnouncementSpec::poisoned(net, prefix, origin, &[target]),
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// (Re-)announce one of the three spec shapes for the i-th (mod pool)
    /// prefix.
    Announce(usize, u8),
    /// Withdraw the i-th (mod pool) prefix (no-op when not announced).
    Withdraw(usize),
    /// Fail the i-th link mod live links (no-op when already down).
    Fail(usize),
    /// Restore the i-th currently-down link (no-op when none are down).
    Restore(usize),
    /// Let the simulator run for this many milliseconds.
    Advance(u64),
}

/// Decode one raw generated tuple into an operation. `kind` picks the op
/// class with announce/fail/restore/advance weighted over withdraw;
/// `index` names a link or a pool slot; `ms` a clock advance.
fn decode(kind: u8, index: usize, ms: u64) -> Op {
    match kind {
        0..=2 => Op::Announce(index, kind),
        3 => Op::Withdraw(index),
        4 | 5 => Op::Fail(index),
        6 | 7 => Op::Restore(index),
        _ => Op::Advance(ms),
    }
}

/// What [`drive`] hands back: the simulator plus the state the
/// assertions need — links left down, the last announced shape per pool
/// slot, and the quiescence tick.
type Driven<'n> = (DynamicSim<'n>, Vec<(AsId, AsId)>, Vec<Option<u8>>, Time);

/// Drive one op sequence through a fresh simulator to quiescence, with
/// the update log recording on.
fn drive<'n>(
    net: &'n Network,
    links: &[(AsId, AsId)],
    pool: &[Prefix],
    ops: &[Op],
    origin: AsId,
    target: AsId,
    cfg: DynamicSimConfig,
) -> Driven<'n> {
    let mut sim = DynamicSim::new(net, cfg);
    sim.record_updates(true);
    let mut down: Vec<(AsId, AsId)> = Vec::new();
    let mut announced: Vec<Option<u8>> = vec![None; pool.len()];
    for op in ops {
        match *op {
            Op::Announce(slot, shape) => {
                let prefix = pool[slot % pool.len()];
                sim.announce(&make_spec(net, prefix, shape, origin, target));
                announced[slot % pool.len()] = Some(shape);
            }
            Op::Withdraw(slot) => {
                if announced[slot % pool.len()].take().is_some() {
                    sim.withdraw(pool[slot % pool.len()]);
                }
            }
            Op::Fail(i) => {
                let link = links[i % links.len()];
                if !down.contains(&link) {
                    down.push(link);
                    sim.fail_link(link.0, link.1);
                }
            }
            Op::Restore(i) => {
                if !down.is_empty() {
                    let link = down.remove(i % down.len());
                    sim.restore_link(link.0, link.1);
                }
            }
            Op::Advance(ms) => {
                let t = sim.now() + ms;
                sim.run_until(t);
            }
        }
    }
    let end = sim.run_until_quiescent(sim.now() + 36_000_000);
    (sim, down, announced, end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_update_sequences_converge_to_static_fixed_point(
        seed in 1u64..10_000,
        raw_ops in proptest::collection::vec((0u8..11, 0usize..1024, 1u64..120_000), 1..24),
        // Fuzz across the MRAI configuration space and both out-queue
        // implementations: the fail/restore × MRAI interaction must reach
        // the same fixed point regardless of shadow length, jitter, or
        // which bookkeeping (ring/wheel vs flat map + heap) paces sends.
        mrai_sel in 0usize..3,
        mrai_jitter in any::<bool>(),
        ring in any::<bool>(),
        // Sweep the adversarial filter deployments too: import-time
        // filtering must not break dynamic/static agreement.
        filter_sel in 0usize..4,
        // And the worker-count matrix: the parallel window engine must
        // reach the same fixed point *and* stay byte-identical to the
        // sequential oracle under arbitrary fail/restore interleavings.
        // LG_WORKER_MATRIX pins the point for CI replay.
        workers_sel in 0usize..4,
        // Prefix pool size: 1 is the historical single-prefix workload,
        // 2+ adds the covering /19 and disjoint siblings, each with an
        // independent announce/withdraw lifecycle.
        pool_size in 1usize..=4,
    ) {
        let mrai_ms = [2_000u64, 10_000, 30_000][mrai_sel];
        let matrix = FilterMatrix::ALL[filter_sel];
        let workers = match WorkerMatrix::from_env() {
            Some(wm) => wm.workers(),
            None => WorkerMatrix::ALL[workers_sel].workers(),
        };
        let ops: Vec<Op> = raw_ops
            .iter()
            .map(|&(kind, index, ms)| decode(kind, index, ms))
            .collect();
        let mut net = Network::new(TopologyConfig::small(seed).generate());
        let filter_assignment = matrix.apply(&mut net, seed);
        let net = net;
        let origin = pick_origin(&net);
        let target = pick_poison_target(&net, origin);
        let links = all_links(&net);
        let pool = churn_prefixes(pool_size);

        let cfg = DynamicSimConfig {
            mrai_ms,
            mrai_jitter,
            out_queue: if ring { OutQueue::Ring } else { OutQueue::Reference },
            workers,
            parallel_spawn_min: 0,
            ..DynamicSimConfig::default()
        };
        let (sim, down, announced, end) =
            drive(&net, &links, &pool, &ops, origin, target, cfg.clone());

        // Whatever the sequence did, the network must settle.
        prop_assert!(sim.quiescent(), "not quiescent by {:?} after {:?}", end, ops);

        // Parallel point: the whole observable run — update log, final
        // clock, quiescence tick — must be byte-identical to the
        // sequential oracle on the same schedule. The oracle also runs
        // with UPDATE packing off (the subject's default is on), pinning
        // packing as pure wire accounting.
        if workers > 1 {
            let (oracle, odown, oann, oend) = drive(
                &net,
                &links,
                &pool,
                &ops,
                origin,
                target,
                DynamicSimConfig { workers: 1, pack_updates: false, ..cfg },
            );
            prop_assert_eq!(&odown, &down);
            prop_assert_eq!(&oann, &announced);
            prop_assert_eq!(
                (oend, oracle.now(), oracle.quiescent()),
                (end, sim.now(), sim.quiescent()),
                "workers {} quiescence diverges from oracle", workers
            );
            prop_assert_eq!(
                oracle.update_log(),
                sim.update_log(),
                "workers {} update log diverges from oracle", workers
            );
            for a in net.graph().ases() {
                for p in &pool {
                    prop_assert_eq!(
                        oracle.loc_route(a, *p),
                        sim.loc_route(a, *p),
                        "workers {} Loc-RIB diverges from oracle at {} for {:?}", workers, a, p
                    );
                }
            }
        }

        // Each pool slot converges to its own static fixed point over the
        // surviving topology, independent of the other prefixes' churn.
        let cut_net;
        let static_net = if down.is_empty() {
            &net
        } else {
            let mut g = net.graph().without_link(down[0].0, down[0].1);
            for (a, b) in &down[1..] {
                g = g.without_link(*a, *b);
            }
            // `Network::new` starts with clean policies, so the oracle
            // must re-apply the *identical* filter assignment the dynamic
            // run used.
            let mut cut = Network::new(g);
            cut.apply_filter_assignment(&filter_assignment);
            cut_net = cut;
            &cut_net
        };
        for (slot, prefix) in pool.iter().enumerate() {
            match announced[slot] {
                None => {
                    // Withdrawn (or never announced): no residual state.
                    for a in net.graph().ases() {
                        prop_assert!(
                            sim.loc_route(a, *prefix).is_none(),
                            "{} kept a route to {:?} after withdrawal",
                            a,
                            prefix
                        );
                    }
                }
                Some(shape) => {
                    let table = compute_routes(
                        static_net,
                        &make_spec(static_net, *prefix, shape, origin, target),
                    );
                    for a in net.graph().ases() {
                        if a == origin {
                            continue;
                        }
                        prop_assert_eq!(
                            sim.loc_route(a, *prefix).map(|r| r.learned_from),
                            table.next_hop(a),
                            "{} disagrees with the static fixed point \
                             (prefix {:?}, shape {}, matrix {}, down {:?})",
                            a,
                            prefix,
                            shape,
                            matrix.label(),
                            &down
                        );
                    }
                }
            }
        }
    }
}

/// Splitmix-style per-round seed derivation from the replayable base.
fn round_seed(base: u64, i: u64) -> u64 {
    let mut x = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x.max(1)
}

/// The calibrated topology sizes flow through the dynamic fuzz matrix
/// too: calibrated-2k in debug, calibrated-10k in release, driven by the
/// shared churn schedule machinery. At these sizes window batches are
/// large enough that the parallel engine shards across real threads, and
/// the whole observable run — update log, Loc-RIBs, quiescence tick,
/// per-AS metrics — must still be byte-identical to the sequential
/// oracle. Replay a failure with `LG_CHURN_SEED=<base>` (and
/// `LG_WORKER_MATRIX=<n>` for the worker point; default 4).
#[test]
fn calibrated_topology_parallel_matches_sequential_oracle() {
    let n = if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    };
    let base = match std::env::var("LG_CHURN_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("LG_CHURN_SEED must be a u64, got {s:?}")),
        Err(_) => 0xD1CE,
    };
    let workers = WorkerMatrix::from_env()
        .unwrap_or(WorkerMatrix::W4)
        .workers();

    for round in 0..2u64 {
        let seed = round_seed(base, round);
        let net = churn_network_sized(n, seed);
        let world = ChurnWorld::new(&net);
        let ops = generate_ops(&ChurnConfig {
            seed,
            ops: 24,
            advance_max_ms: 45_000,
        });

        let run = |workers: usize, pack: bool| {
            let mut sim = DynamicSim::new(
                &net,
                DynamicSimConfig {
                    out_queue: OutQueue::Ring,
                    workers,
                    parallel_spawn_min: 0,
                    pack_updates: pack,
                    ..DynamicSimConfig::default()
                },
            );
            sim.record_updates(true);
            for p in &world.prefixes {
                sim.begin_epoch(*p);
            }
            let mut runner = ChurnRunner::new(&world);
            for op in &ops {
                runner.apply(&mut sim, &net, op);
            }
            let tick = sim.run_until_quiescent(sim.now() + Time::from_mins(600).millis());
            let locs: Vec<_> = world
                .prefixes
                .iter()
                .flat_map(|p| {
                    net.graph().ases().map(|a| {
                        (
                            *p,
                            a,
                            sim.loc_route(a, *p)
                                .map(|r| (r.learned_from, r.path.hops().to_vec())),
                        )
                    })
                })
                .collect();
            (
                tick,
                sim.now(),
                sim.quiescent(),
                sim.update_log().to_vec(),
                locs,
            )
        };

        // Subject packs multi-prefix UPDATEs; the oracle doesn't. The
        // comparison pins packing as observational at calibrated scale.
        let par = run(workers, true);
        let oracle = run(1, false);
        assert!(
            oracle.2,
            "calibrated-{n} oracle not quiescent (seed {seed:#x})"
        );
        assert_eq!(
            (oracle.0, oracle.1, oracle.2),
            (par.0, par.1, par.2),
            "calibrated-{n} workers={workers} quiescence diverges (replay LG_CHURN_SEED={base})"
        );
        assert_eq!(
            oracle.3.len(),
            par.3.len(),
            "calibrated-{n} workers={workers} log length diverges (replay LG_CHURN_SEED={base})"
        );
        for (i, (o, p)) in oracle.3.iter().zip(par.3.iter()).enumerate() {
            assert_eq!(
                o, p,
                "calibrated-{n} workers={workers} log diverges at record {i} \
                 (replay LG_CHURN_SEED={base})"
            );
        }
        assert_eq!(
            oracle.4, par.4,
            "calibrated-{n} workers={workers} Loc-RIBs diverge (replay LG_CHURN_SEED={base})"
        );
    }
}
