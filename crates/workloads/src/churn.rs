//! Randomized BGP churn schedules.
//!
//! A churn schedule is a deterministic (seeded) interleaving of the
//! control-plane operations LIFEGUARD's repair loop can issue — announce
//! (plain / prepended / poisoned), withdraw, session failure, session
//! restoration — plus clock advances that land the operations inside or
//! outside MRAI shadows. The same schedule applied to two simulators must
//! drive them identically, which is what `tests/outqueue_differential.rs`
//! exploits to pin the ring-buffer out-queue against the reference
//! implementation, and what the `dynamic_churn` bench uses as a dense
//! convergence workload.
//!
//! Schedules select from a *pool* of prefixes ([`churn_prefixes`], sized
//! by `LG_PREFIX_COUNT`, default 2), so announce/withdraw cycles on
//! several prefixes — including a covering/covered pair — interleave over
//! one topology. A pool of 1 degenerates to the original single-prefix
//! workload.

use lg_asmap::{AsId, TopologyConfig};
use lg_bgp::Prefix;
use lg_sim::{AnnouncementSpec, DynamicSim, Network};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The first (and historically only) prefix churn schedules operate on.
pub fn churn_prefix() -> Prefix {
    Prefix::from_octets(184, 164, 224, 0, 20)
}

/// A deterministic pool of `n` churn prefixes. The pool is built to
/// exercise longest-prefix-match interplay, not just disjoint slots:
///
/// * index 0 is [`churn_prefix`] (the paper's 184.164.224.0/20);
/// * index 1 is the *covering* /19 at the same base, so announcing both
///   creates a covered/covering pair (the sentinel less-specific shape);
/// * index 2 is the sibling /20 inside that /19;
/// * indexes ≥ 3 stride disjoint /20s upward from the base.
///
/// Prefixes are announced, withdrawn, and failed over independently, so a
/// multi-prefix schedule interleaves per-prefix state machines over the
/// shared topology.
pub fn churn_prefixes(n: usize) -> Vec<Prefix> {
    let base = churn_prefix();
    (0..n)
        .map(|i| match i {
            0 => base,
            1 => Prefix::new(base.addr(), 19),
            _ => Prefix::new(base.addr() + ((i as u32 - 1) << 12), 20),
        })
        .collect()
}

/// Pool size for multi-prefix harnesses: `LG_PREFIX_COUNT`, default 2.
pub fn prefix_count_from_env() -> usize {
    match std::env::var("LG_PREFIX_COUNT") {
        Ok(s) => s
            .trim()
            .parse()
            .ok()
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| panic!("LG_PREFIX_COUNT must be a positive integer, got {s:?}")),
        Err(_) => 2,
    }
}

/// A small hierarchical network for churn runs; same seed, same graph.
pub fn churn_network(topology_seed: u64) -> Network {
    Network::new(TopologyConfig::small(topology_seed).generate())
}

/// An Internet-calibrated network for churn runs at benchmark scale; the
/// schedule machinery is size-agnostic (link indexes resolve modulo the
/// live link list), so the same ops drive a 50-AS or a 10k-AS world.
pub fn churn_network_sized(n: usize, topology_seed: u64) -> Network {
    Network::new(TopologyConfig::calibrated(n, topology_seed).generate())
}

/// One operation of a churn schedule. Link indexes are resolved modulo
/// the live/down link lists at application time, so any index is valid
/// against any topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnOp {
    /// (Re-)announce a prefix: `(prefix selector, shape selector)`. The
    /// prefix selector resolves modulo the world's pool, the shape
    /// selector picks plain, prepended, or poisoned.
    Announce(u8, u8),
    /// Withdraw the selected (mod pool) prefix (no-op when that prefix is
    /// not announced).
    Withdraw(u8),
    /// Fail the i-th (mod live) link.
    Fail(usize),
    /// Restore the i-th (mod down) currently-down link.
    Restore(usize),
    /// Advance the clock by this many milliseconds.
    Advance(u64),
}

/// Schedule-generation knobs.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// RNG seed; same seed, same schedule.
    pub seed: u64,
    /// Number of operations to generate.
    pub ops: usize,
    /// Upper bound on a single clock advance, in ms. Keep this below the
    /// MRAI interval to land most operations inside MRAI shadows (the
    /// dense-churn regime); raise it to let convergence complete between
    /// operations.
    pub advance_max_ms: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 1,
            ops: 24,
            advance_max_ms: 45_000,
        }
    }
}

/// Generate a churn schedule. Operation classes are weighted toward the
/// interesting interleavings: announcements and link flaps dominate, with
/// enough advances to spread them across MRAI phases.
pub fn generate_ops(cfg: &ChurnConfig) -> Vec<ChurnOp> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    (0..cfg.ops)
        .map(|_| match rng.gen_range(0..100u32) {
            0..=29 => ChurnOp::Announce(rng.gen_range(0..64) as u8, rng.gen_range(0..3) as u8),
            30..=39 => ChurnOp::Withdraw(rng.gen_range(0..64) as u8),
            40..=59 => ChurnOp::Fail(rng.gen_range(0..1024usize)),
            60..=74 => ChurnOp::Restore(rng.gen_range(0..1024usize)),
            _ => ChurnOp::Advance(rng.gen_range(1..cfg.advance_max_ms)),
        })
        .collect()
}

/// The deterministic cast of one churn world: which AS originates, which
/// AS gets poisoned, and the link list indexes name.
pub struct ChurnWorld {
    /// Originating (stub) AS.
    pub origin: AsId,
    /// Poison target for the poisoned announcement shape.
    pub target: AsId,
    /// All links as unordered pairs (a < b), in deterministic order.
    pub links: Vec<(AsId, AsId)>,
    /// The prefix pool schedules select from ([`churn_prefixes`]).
    pub prefixes: Vec<Prefix>,
}

impl ChurnWorld {
    /// [`ChurnWorld::with_prefix_count`] at the `LG_PREFIX_COUNT` pool
    /// size (default 2), so every harness picks up the env knob.
    pub fn new(net: &Network) -> Self {
        Self::with_prefix_count(net, prefix_count_from_env())
    }

    /// Derive the cast from a network: a multihomed stub origin when one
    /// exists, a transit AS above its first provider as the poison target,
    /// and a pool of `prefix_count` prefixes all originated there.
    pub fn with_prefix_count(net: &Network, prefix_count: usize) -> Self {
        let origin = net
            .graph()
            .ases()
            .find(|a| net.graph().is_stub(*a) && net.graph().providers(*a).len() >= 2)
            .or_else(|| net.graph().ases().find(|a| net.graph().is_stub(*a)))
            .expect("topology has stubs");
        let providers = net.graph().providers(origin);
        let above = net.graph().providers(providers[0]);
        let target = if above.is_empty() {
            providers[0]
        } else {
            above[0]
        };
        let mut links = Vec::new();
        for a in net.graph().ases() {
            for (b, _) in net.graph().neighbors(a) {
                if a.0 < b.0 {
                    links.push((a, *b));
                }
            }
        }
        ChurnWorld {
            origin,
            target,
            links,
            prefixes: churn_prefixes(prefix_count),
        }
    }

    /// The announcement spec a `(prefix, shape)` selector pair denotes in
    /// this world. Both selectors resolve modulo their pools, so any byte
    /// is valid against any world.
    pub fn spec(&self, net: &Network, prefix_sel: u8, shape: u8) -> AnnouncementSpec {
        let prefix = self.prefix(prefix_sel);
        match shape % 3 {
            0 => AnnouncementSpec::plain(net, prefix, self.origin),
            1 => AnnouncementSpec::prepended(net, prefix, self.origin, 3),
            _ => AnnouncementSpec::poisoned(net, prefix, self.origin, &[self.target]),
        }
    }

    /// Resolve a prefix selector against the pool.
    pub fn prefix(&self, prefix_sel: u8) -> Prefix {
        self.prefixes[prefix_sel as usize % self.prefixes.len()]
    }
}

/// Applies a schedule to one simulator, tracking the evolving link state
/// so `Fail`/`Restore` indexes resolve deterministically. Two runners fed
/// the same ops issue bit-identical call sequences to their sims.
pub struct ChurnRunner<'w> {
    world: &'w ChurnWorld,
    down: Vec<(AsId, AsId)>,
    /// Per-pool-slot announced shape, `None` while withdrawn.
    announced: Vec<Option<u8>>,
}

impl<'w> ChurnRunner<'w> {
    /// A runner over `world` with all links up and nothing announced.
    pub fn new(world: &'w ChurnWorld) -> Self {
        ChurnRunner {
            world,
            down: Vec::new(),
            announced: vec![None; world.prefixes.len()],
        }
    }

    /// The last announced shape per pool slot (`None` while withdrawn).
    pub fn announced(&self) -> &[Option<u8>] {
        &self.announced
    }

    /// Links currently failed, in failure order.
    pub fn down(&self) -> &[(AsId, AsId)] {
        &self.down
    }

    /// Apply one operation to `sim`.
    pub fn apply(&mut self, sim: &mut DynamicSim<'_>, net: &Network, op: &ChurnOp) {
        match *op {
            ChurnOp::Announce(prefix_sel, shape) => {
                sim.announce(&self.world.spec(net, prefix_sel, shape));
                let slot = prefix_sel as usize % self.announced.len();
                self.announced[slot] = Some(shape);
            }
            ChurnOp::Withdraw(prefix_sel) => {
                let slot = prefix_sel as usize % self.announced.len();
                if self.announced[slot].take().is_some() {
                    sim.withdraw(self.world.prefix(prefix_sel));
                }
            }
            ChurnOp::Fail(i) => {
                let link = self.world.links[i % self.world.links.len()];
                if !self.down.contains(&link) {
                    self.down.push(link);
                    sim.fail_link(link.0, link.1);
                }
            }
            ChurnOp::Restore(i) => {
                if !self.down.is_empty() {
                    let link = self.down.remove(i % self.down.len());
                    sim.restore_link(link.0, link.1);
                }
            }
            ChurnOp::Advance(ms) => {
                let t = sim.now() + ms;
                sim.run_until(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = ChurnConfig {
            seed: 42,
            ..ChurnConfig::default()
        };
        assert_eq!(generate_ops(&cfg), generate_ops(&cfg));
        let other = generate_ops(&ChurnConfig {
            seed: 43,
            ..cfg.clone()
        });
        assert_ne!(generate_ops(&cfg), other, "different seeds, same ops");
    }

    #[test]
    fn schedule_mixes_operation_classes() {
        let ops = generate_ops(&ChurnConfig {
            seed: 7,
            ops: 200,
            advance_max_ms: 10_000,
        });
        let announces = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Announce(..)))
            .count();
        let fails = ops.iter().filter(|o| matches!(o, ChurnOp::Fail(_))).count();
        let advances = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Advance(_)))
            .count();
        assert!(announces > 20, "too few announcements: {announces}");
        assert!(fails > 10, "too few failures: {fails}");
        assert!(advances > 10, "too few advances: {advances}");
    }

    #[test]
    fn runner_drives_a_sim_to_quiescence() {
        use lg_sim::{DynamicSimConfig, Time};
        let net = churn_network(3);
        let world = ChurnWorld::new(&net);
        let mut sim = DynamicSim::new(&net, DynamicSimConfig::default());
        let mut runner = ChurnRunner::new(&world);
        for op in &generate_ops(&ChurnConfig {
            seed: 3,
            ..ChurnConfig::default()
        }) {
            runner.apply(&mut sim, &net, op);
        }
        sim.run_until_quiescent(sim.now() + Time::from_mins(600).millis());
        assert!(sim.quiescent());
    }
}
