//! Periodic time-series sampling of a [`Registry`] and Prometheus text
//! exposition — the /metrics surface for the Lifeguard-as-a-service
//! daemon, exercised today by `lifeguard-sim --timeseries` and
//! `LG_TIMESERIES_OUT` in the bench mains.
//!
//! A [`TimeSeries`] keeps, per metric, a fixed-capacity ring of
//! `(at_ms, value, delta)` samples produced by diffing successive
//! [`TelemetrySnapshot`]s: counters and histogram counts report their
//! cumulative value plus the delta since the previous sample, gauges
//! report their instantaneous value. [`TimeSeries::render_prometheus`]
//! renders the latest cumulative state in Prometheus text exposition
//! format (`lg_`-prefixed, counters as `_total`, histograms as
//! cumulative `_bucket{le=...}`/`_sum`/`_count`, facts folded into one
//! `lg_run_info` label set).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use crate::registry::{global, Registry};
use crate::snapshot::{record_host_facts, MetricValue, TelemetrySnapshot};

/// Environment variable naming the file the global time series should
/// render its Prometheus exposition to at the end of a run
/// (see [`emit_timeseries_if_configured`]).
pub const ENV_TIMESERIES_OUT: &str = "LG_TIMESERIES_OUT";

/// Default per-metric sample-ring capacity for [`global_timeseries`].
pub const DEFAULT_SAMPLES: usize = 1024;

/// One sampled point of one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Caller-supplied timestamp (sim-time millis in the simulator,
    /// wall millis in a daemon).
    pub at_ms: u64,
    /// Cumulative value at the sample (counter total, gauge reading,
    /// histogram count).
    pub value: u64,
    /// Increase since the previous sample (saturating; gauges report
    /// their absolute change).
    pub delta: u64,
}

/// Fixed-capacity ring of [`Sample`]s for one metric, oldest dropped
/// first.
#[derive(Clone, Debug, Default)]
pub struct SeriesRing {
    capacity: usize,
    samples: VecDeque<Sample>,
}

impl SeriesRing {
    fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
        }
    }

    fn push(&mut self, s: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(s);
    }

    /// Samples oldest-first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }
}

/// Snapshot-diffing sampler: call [`TimeSeries::sample`] periodically and
/// it accumulates per-metric rings plus the latest cumulative snapshot
/// for exposition.
#[derive(Default)]
pub struct TimeSeries {
    capacity: usize,
    last: Option<TelemetrySnapshot>,
    series: BTreeMap<String, SeriesRing>,
}

impl TimeSeries {
    /// Sampler retaining up to `capacity` samples per metric.
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(1),
            last: None,
            series: BTreeMap::new(),
        }
    }

    /// Ingest one snapshot taken at `at_ms`, appending a [`Sample`] per
    /// numeric metric (facts carry no time series).
    pub fn sample(&mut self, snap: TelemetrySnapshot, at_ms: u64) {
        for (name, v) in &snap.metrics {
            let value = match v {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => *n,
                MetricValue::Histogram(h) => h.count,
                MetricValue::Fact(_) => continue,
            };
            let prev = self.last.as_ref().and_then(|l| match l.value(name) {
                Some(MetricValue::Counter(n) | MetricValue::Gauge(n)) => Some(*n),
                Some(MetricValue::Histogram(h)) => Some(h.count),
                _ => None,
            });
            let delta = match prev {
                // Gauges move both ways; report the magnitude of the move.
                Some(p) if matches!(v, MetricValue::Gauge(_)) => value.abs_diff(p),
                Some(p) => value.saturating_sub(p),
                None => value,
            };
            self.series
                .entry(name.clone())
                .or_insert_with(|| SeriesRing::new(self.capacity))
                .push(Sample {
                    at_ms,
                    value,
                    delta,
                });
        }
        self.last = Some(snap);
    }

    /// Convenience: sample `registry` now.
    pub fn sample_registry(&mut self, registry: &Registry, at_ms: u64) {
        self.sample(registry.snapshot(), at_ms);
    }

    /// The ring for `name`, if it has ever been sampled.
    pub fn series(&self, name: &str) -> Option<&SeriesRing> {
        self.series.get(name)
    }

    /// Number of metrics with at least one sample.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Latest cumulative snapshot ingested, if any.
    pub fn latest_snapshot(&self) -> Option<&TelemetrySnapshot> {
        self.last.as_ref()
    }

    /// Timestamp of the most recent sample across all metrics, if any.
    pub fn latest_at_ms(&self) -> Option<u64> {
        self.series
            .values()
            .filter_map(|r| r.latest().map(|s| s.at_ms))
            .max()
    }

    /// Render the latest cumulative snapshot in Prometheus text
    /// exposition format. Metric names are `lg_`-prefixed with dots
    /// mapped to underscores; counters gain `_total`; histograms render
    /// cumulative `_bucket{le="..."}` plus `_sum`/`_count`; facts fold
    /// into a single `lg_run_info{...} 1` info metric.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let Some(snap) = &self.last else {
            return out;
        };
        let mut facts: Vec<(&str, &str)> = Vec::new();
        for (name, v) in &snap.metrics {
            let prom = prom_name(name);
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "# TYPE lg_{prom}_total counter");
                    let _ = writeln!(out, "lg_{prom}_total {n}");
                }
                MetricValue::Gauge(n) => {
                    let _ = writeln!(out, "# TYPE lg_{prom} gauge");
                    let _ = writeln!(out, "lg_{prom} {n}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE lg_{prom} histogram");
                    let mut cumulative = 0u64;
                    for &(upper, count) in &h.buckets {
                        cumulative += count;
                        if upper == u64::MAX {
                            let _ = writeln!(out, "lg_{prom}_bucket{{le=\"+Inf\"}} {cumulative}");
                        } else {
                            let _ =
                                writeln!(out, "lg_{prom}_bucket{{le=\"{upper}\"}} {cumulative}");
                        }
                    }
                    if h.buckets.last().map(|&(u, _)| u) != Some(u64::MAX) {
                        let _ = writeln!(out, "lg_{prom}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "lg_{prom}_sum {}", h.sum);
                    let _ = writeln!(out, "lg_{prom}_count {}", h.count);
                }
                MetricValue::Fact(s) => facts.push((name, s)),
            }
        }
        if !facts.is_empty() {
            let _ = writeln!(out, "# TYPE lg_run_info gauge");
            out.push_str("lg_run_info{");
            for (i, (name, value)) in facts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}=\"{}\"", prom_name(name), escape_label(value));
            }
            out.push_str("} 1\n");
        }
        out
    }

    /// Serialize the retained rings as JSON:
    /// `{"timeseries": {name: [[at_ms, value, delta], ...]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"timeseries\": {");
        for (i, (name, ring)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": [", name.replace('"', ""));
            for (j, s) in ring.samples().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}, {}]", s.at_ms, s.value, s.delta);
            }
            out.push(']');
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Map a dotted metric name to a Prometheus-legal name fragment.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// The process-wide sampler fed by [`sample_global_timeseries`] and
/// drained by [`emit_timeseries_if_configured`].
pub fn global_timeseries() -> &'static Mutex<TimeSeries> {
    static GLOBAL: OnceLock<Mutex<TimeSeries>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(TimeSeries::new(DEFAULT_SAMPLES)))
}

/// Sample the global registry into the global time series at `at_ms`.
pub fn sample_global_timeseries(at_ms: u64) {
    global_timeseries()
        .lock()
        .unwrap()
        .sample(global().snapshot(), at_ms);
}

/// If `LG_TIMESERIES_OUT` names a path, render the global time series'
/// Prometheus exposition there (atomically — temp + rename) and return
/// the path. Takes one final sample first (stamping host/provenance
/// facts) so a run that never sampled still exports its end state.
pub fn emit_timeseries_if_configured() -> Option<PathBuf> {
    let path = PathBuf::from(std::env::var_os(ENV_TIMESERIES_OUT)?);
    record_host_facts();
    let mut ts = global_timeseries().lock().unwrap();
    let at_ms = ts.latest_at_ms().map_or(0, |t| t + 1);
    ts.sample(global().snapshot(), at_ms);
    let text = ts.render_prometheus();
    match crate::atomic_write(&path, &text) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("timeseries: failed to write {}: {e}", path.display());
            None
        }
    }
}
