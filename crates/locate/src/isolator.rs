//! The isolation pipeline.

use crate::baseline::traceroute_only_blame;
use crate::report::{Blame, FailureDirection, IsolationReport};
use lg_asmap::{AsId, RouterId};
use lg_atlas::{Atlas, PathKind, ResponsivenessDb};
use lg_probe::Prober;
use lg_sim::dataplane::{infra_addr, DataPlane};
use lg_sim::Time;

/// Modeled stage durations. The simulator executes probes instantaneously;
/// these constants model the wall-clock cost of each stage in deployment
/// (probe rounds, retries, rate-limit pacing), calibrated so a reverse-path
/// isolation lands near the paper's reported 140 s average.
#[derive(Clone, Copy, Debug)]
pub struct IsolatorConfig {
    /// Initial confirmation traceroute stage (ms).
    pub traceroute_stage_ms: u64,
    /// Spoofed-ping direction isolation stage (ms).
    pub direction_stage_ms: u64,
    /// Working-direction path measurement stage (ms).
    pub working_path_stage_ms: u64,
    /// Per candidate-AS reachability test (ms, includes retries).
    pub per_candidate_ms: u64,
    /// Per reverse traceroute issued from a reachable hop (ms).
    pub per_revtr_ms: u64,
    /// Final pruning/analysis stage (ms).
    pub prune_stage_ms: u64,
    /// Ping retries before declaring a hop unreachable.
    pub ping_retries: u32,
    /// Max vantage points consulted per stage.
    pub max_vantage_points: usize,
    /// Max reverse traceroutes issued from reachable hops.
    pub max_revtrs: usize,
}

impl Default for IsolatorConfig {
    fn default() -> Self {
        IsolatorConfig {
            traceroute_stage_ms: 10_000,
            direction_stage_ms: 15_000,
            working_path_stage_ms: 25_000,
            per_candidate_ms: 4_000,
            per_revtr_ms: 10_000,
            prune_stage_ms: 5_000,
            ping_retries: 3,
            max_vantage_points: 5,
            max_revtrs: 3,
        }
    }
}

/// Runs the §4.1 isolation pipeline from one source vantage point, assisted
/// by others.
pub struct Isolator {
    /// Other vantage points that send/receive on the source's behalf.
    pub vantage_points: Vec<AsId>,
    /// Stage cost model and limits.
    pub cfg: IsolatorConfig,
}

impl Isolator {
    /// Isolator with default configuration.
    pub fn new(vantage_points: Vec<AsId>) -> Self {
        Isolator {
            vantage_points,
            cfg: IsolatorConfig::default(),
        }
    }

    /// Destination address used for probing `dst`.
    fn dst_addr(dp: &DataPlane<'_>, dst: AsId) -> u32 {
        dp.prefix_of(dst)
            .map(|p| p.nth_addr(1))
            .unwrap_or_else(|| infra_addr(dst))
    }

    /// Reachability test with retries: does `target` answer pings from
    /// `from`?
    fn reachable(
        &self,
        dp: &DataPlane<'_>,
        prober: &mut Prober,
        now: Time,
        from: AsId,
        target: AsId,
    ) -> bool {
        for _ in 0..self.cfg.ping_retries.max(1) {
            if prober.ping(dp, now, from, infra_addr(target)).responded {
                return true;
            }
        }
        false
    }

    /// Isolate an outage between `src` (a vantage point we control) and
    /// `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn isolate(
        &self,
        dp: &DataPlane<'_>,
        prober: &mut Prober,
        atlas: &Atlas,
        resp: &ResponsivenessDb,
        now: Time,
        src: AsId,
        dst: AsId,
    ) -> IsolationReport {
        let before = prober.counters();
        let mut elapsed = 0u64;
        let dst_addr = Self::dst_addr(dp, dst);

        // Stage 0: plain traceroute — confirms the failure and feeds the
        // traceroute-only baseline for comparison.
        let tr = prober.traceroute(dp, now, src, dst_addr);
        let traceroute_blame = traceroute_only_blame(&tr);
        elapsed += self.cfg.traceroute_stage_ms;

        // Stage 1: direction isolation via spoofed pings.
        let vps: Vec<AsId> = self
            .vantage_points
            .iter()
            .copied()
            .filter(|v| *v != src && *v != dst)
            .take(self.cfg.max_vantage_points)
            .collect();
        let mut fwd_ok = false;
        let mut fwd_receiver: Option<AsId> = None;
        let mut rev_ok = false;
        for &v in &vps {
            if !fwd_ok && prober.spoofed_ping(dp, now, src, dst_addr, v).responded {
                fwd_ok = true;
                fwd_receiver = Some(v);
            }
            if !rev_ok && prober.spoofed_ping(dp, now, v, dst_addr, src).responded {
                rev_ok = true;
            }
            if fwd_ok && rev_ok {
                break;
            }
        }
        elapsed += self.cfg.direction_stage_ms;
        let direction = match (fwd_ok, rev_ok) {
            (true, true) => FailureDirection::NoFailure,
            (true, false) => FailureDirection::Reverse,
            (false, true) => FailureDirection::Forward,
            (false, false) => FailureDirection::Bidirectional,
        };
        if direction == FailureDirection::NoFailure {
            return IsolationReport {
                direction,
                blame: None,
                horizon: None,
                suspects: Vec::new(),
                working_path: None,
                traceroute_blame,
                probes_used: prober.counters().since(&before),
                elapsed_ms: elapsed,
            };
        }

        // Stage 2: measure the path in the working direction.
        let working_path: Option<Vec<RouterId>> = match direction {
            FailureDirection::Reverse => {
                // Spoofed traceroute: probes from src, responses to the
                // vantage point that proved the forward path works.
                fwd_receiver.map(|recv| {
                    let sp = prober.traceroute_to(dp, now, src, dst_addr, recv);
                    std::iter::once(RouterId::internal(src))
                        .chain(sp.hops.iter().filter(|h| h.responded).map(|h| h.router))
                        .collect()
                })
            }
            FailureDirection::Forward => {
                // Vantage-assisted reverse traceroute of the working reverse
                // direction (D back to S).
                vps.iter()
                    .find(|v| prober.ping(dp, now, **v, dst_addr).responded)
                    .and_then(|_| {
                        prober.charge_option_probes(35);
                        let w = dp.walk(now, dst, infra_addr(src));
                        w.outcome.delivered().then_some(w.hops)
                    })
            }
            _ => None,
        };
        elapsed += self.cfg.working_path_stage_ms;

        // Stage 3: test candidate hops in the failing direction.
        let mut candidates = atlas.candidate_ases(src, dst);
        for h in tr.responsive_as_path() {
            if !candidates.contains(&h) {
                candidates.push(h);
            }
        }
        if !candidates.contains(&dst) {
            candidates.push(dst);
        }
        candidates.retain(|c| *c != src);

        let mut reachable_set = Vec::new();
        let mut unreachable_meaningful = Vec::new();
        let mut excluded_silent = Vec::new();
        for &c in &candidates {
            if self.reachable(dp, prober, now, src, c) {
                reachable_set.push(c);
            } else if resp.silence_is_meaningful(c) {
                unreachable_meaningful.push(c);
                // Extra evidence: is the hop alive from elsewhere?
                for &v in vps.iter().take(2) {
                    if self.reachable(dp, prober, now, v, c) {
                        break;
                    }
                }
            } else {
                excluded_silent.push(c);
            }
        }
        elapsed += self.cfg.per_candidate_ms * candidates.len() as u64;

        // Reverse traceroutes from a few reachable hops refine the picture
        // (e.g. "NTT still used the same path towards GMU").
        for &h in reachable_set.iter().take(self.cfg.max_revtrs) {
            prober.reverse_traceroute(dp, now, src, h, true);
            elapsed += self.cfg.per_revtr_ms;
        }

        // Stage 4: prune and blame along historical paths.
        let (blame, horizon) = match direction {
            FailureDirection::Forward => {
                self.blame_forward(dp, prober, now, atlas, &tr, src, dst, &vps)
            }
            _ => self.blame_reverse(atlas, src, dst, &reachable_set, &unreachable_meaningful),
        };
        elapsed += self.cfg.prune_stage_ms;

        IsolationReport {
            direction,
            blame,
            horizon,
            suspects: unreachable_meaningful,
            working_path,
            traceroute_blame,
            probes_used: prober.counters().since(&before),
            elapsed_ms: elapsed,
        }
    }

    /// Reverse / bidirectional blame: the reachability-horizon scan.
    ///
    /// Walk historical reverse paths (newest first). Each records hops from
    /// `dst` toward `src`; scanning from the `src` end toward `dst`, the
    /// first hop that cannot reach `src` (and whose silence is meaningful)
    /// is the far side of the horizon and takes the blame.
    fn blame_reverse(
        &self,
        atlas: &Atlas,
        src: AsId,
        dst: AsId,
        reachable: &[AsId],
        unreachable: &[AsId],
    ) -> (Option<Blame>, Option<(AsId, AsId)>) {
        // When the newest path is fully healthy up to the destination
        // itself, the destination likely switched to another (broken) path
        // after the atlas was last refreshed — the §4.1.2 / §6 situation.
        // Remember such a "blame the destination" outcome but keep
        // analyzing older historical paths for a transit culprit first.
        type BlameAndHorizon = (Option<Blame>, Option<(AsId, AsId)>);
        let mut dst_fallback: Option<BlameAndHorizon> = None;
        for rec in atlas.history_newest_first(PathKind::Reverse, src, dst) {
            let path = rec.as_path(); // [dst, ..., src]
                                      // Scan from the src side toward dst.
            let mut last_reachable = src;
            for h in path.iter().rev() {
                if *h == src {
                    continue;
                }
                if reachable.contains(h) {
                    last_reachable = *h;
                    continue;
                }
                if unreachable.contains(h) {
                    if *h == dst {
                        dst_fallback
                            .get_or_insert((Some(Blame::As(dst)), Some((dst, last_reachable))));
                        break; // consult an older path for a transit culprit
                    }
                    return (Some(Blame::As(*h)), Some((*h, last_reachable)));
                }
                // Hop we could not classify (never answers probes): skip it
                // and keep scanning; if nothing conclusive, fall through to
                // an older path.
            }
        }
        if let Some(fb) = dst_fallback {
            return fb;
        }
        // No historical path was conclusive. If the destination itself is
        // among the meaningful unreachables, blame it; else give up.
        if unreachable.contains(&dst) {
            (Some(Blame::As(dst)), None)
        } else {
            (None, None)
        }
    }

    /// Forward blame: the failure lies just past the last responsive
    /// traceroute hop. The historical forward path names the next AS N; how
    /// the blame is pinned depends on what still works:
    ///
    /// * N answers pings from the source → N's own connectivity is fine, so
    ///   the failure is the boundary (the last hop's forwarding toward N —
    ///   possibly inside the last hop itself, scoped to this flow);
    /// * N is silent to the source but alive from other vantage points →
    ///   the boundary between the last hop and N has failed;
    /// * N is dead from everywhere → blame N outright.
    #[allow(clippy::too_many_arguments)]
    fn blame_forward(
        &self,
        dp: &DataPlane<'_>,
        prober: &mut Prober,
        now: Time,
        atlas: &Atlas,
        tr: &lg_probe::Traceroute,
        src: AsId,
        dst: AsId,
        vps: &[AsId],
    ) -> (Option<Blame>, Option<(AsId, AsId)>) {
        let last = match tr.last_responsive_as() {
            Some(l) => l,
            None => return (Some(Blame::As(dst)), None),
        };
        // Find the next AS after `last` on the latest historical forward
        // path.
        let next = atlas
            .latest(PathKind::Forward, src, dst)
            .map(|rec| rec.as_path())
            .and_then(|p| {
                p.iter()
                    .position(|h| *h == last)
                    .and_then(|i| p.get(i + 1).copied())
            });
        match next {
            Some(n) => {
                let from_src = self.reachable(dp, prober, now, src, n);
                let alive_elsewhere =
                    from_src || vps.iter().any(|v| self.reachable(dp, prober, now, *v, n));
                if from_src {
                    (Some(Blame::Link(last, n)), Some((last, n)))
                } else if alive_elsewhere {
                    (Some(Blame::Link(last, n)), Some((n, last)))
                } else {
                    (Some(Blame::As(n)), Some((n, last)))
                }
            }
            None => (Some(Blame::As(last)), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_asmap::GraphBuilder;
    use lg_atlas::RefreshScheduler;
    use lg_sim::dataplane::infra_prefix;
    use lg_sim::failures::{Direction, Failure};
    use lg_sim::Network;

    /// A mesh rich enough for isolation: src stub S(0) under transit T1(1)
    /// under core C1(2); dst stub D(6) under transit T2(5) under core C2(4);
    /// cores peer; an extra transit path C1-M(3)-C2 gives alternates; VPs
    /// V1(7) under C1, V2(8) under C2.
    fn world() -> (Network, AsId, AsId, Vec<AsId>) {
        let mut g = GraphBuilder::with_ases(9);
        let (s, t1, c1, m, c2, t2, d, v1, v2) = (
            AsId(0),
            AsId(1),
            AsId(2),
            AsId(3),
            AsId(4),
            AsId(5),
            AsId(6),
            AsId(7),
            AsId(8),
        );
        g.provider_customer(t1, s);
        g.provider_customer(c1, t1);
        g.peer(c1, c2);
        g.provider_customer(c1, m);
        g.provider_customer(c2, m);
        g.provider_customer(c2, t2);
        g.provider_customer(t2, d);
        g.provider_customer(c1, v1);
        g.provider_customer(c2, v2);
        (Network::new(g.build()), s, d, vec![v1, v2])
    }

    struct Setup<'n> {
        dp: DataPlane<'n>,
        prober: Prober,
        atlas: Atlas,
        resp: ResponsivenessDb,
    }

    fn setup<'n>(net: &'n Network, src: AsId, dst: AsId) -> Setup<'n> {
        let mut dp = DataPlane::new(net);
        dp.ensure_infra_all();
        let mut prober = Prober::with_defaults();
        let mut atlas = Atlas::default();
        let mut resp = ResponsivenessDb::new();
        // Healthy-period atlas: monitor src<->dst plus every AS so the
        // responsiveness DB knows everyone answers.
        let mut pairs = vec![(src, dst)];
        for a in net.graph().ases() {
            if a != src {
                pairs.push((src, a));
            }
        }
        let mut sched = RefreshScheduler::new(pairs, 60_000);
        sched.refresh_due(&dp, &mut prober, &mut atlas, &mut resp, Time::ZERO);
        Setup {
            dp,
            prober,
            atlas,
            resp,
        }
    }

    #[test]
    fn reverse_failure_blamed_correctly() {
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        // Silent reverse failure: core C2 (AS4) drops traffic toward S's
        // prefix. Forward S->D is fine; reverse dies in C2.
        env.dp
            .failures_mut()
            .add(Failure::silent_as_toward(AsId(4), infra_prefix(s)));
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        assert_eq!(report.direction, FailureDirection::Reverse);
        assert_eq!(report.blamed_as(), Some(AsId(4)), "report: {report:?}");
        // Traceroute alone would blame something else entirely.
        assert!(report.differs_from_traceroute(), "{report:?}");
        // The working (forward) path was measured.
        let wp = report.working_path.expect("working path measured");
        assert_eq!(wp.last().unwrap().owner, d);
        // Horizon identifies the boundary.
        let (far, near) = report.horizon.unwrap();
        assert_eq!(far, AsId(4));
        assert_ne!(near, far);
    }

    #[test]
    fn forward_failure_blamed_correctly() {
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        // Forward failure: C2 drops S's flow toward D's prefix (scoped to
        // the ingress from C1, so the outage is partial and other vantage
        // points still reach D).
        env.dp
            .failures_mut()
            .add(Failure::silent_as_toward(AsId(4), infra_prefix(d)).ingress_from(AsId(2)));
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        assert_eq!(report.direction, FailureDirection::Forward);
        // The walk dies inside C2 after its ingress responded, so the blame
        // is C2 (at AS granularity, via the boundary toward its next hop).
        assert_eq!(report.blamed_as(), Some(AsId(4)), "report: {report:?}");
    }

    #[test]
    fn link_failure_blamed_at_boundary() {
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        // The C1->C2 link silently drops traffic toward D (forward
        // direction for S).
        env.dp.failures_mut().add(
            Failure::silent_link(AsId(2), AsId(4))
                .direction(Direction::AToB)
                .window(Time::ZERO, None),
        );
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        assert_eq!(report.direction, FailureDirection::Forward);
        assert_eq!(report.blame, Some(Blame::Link(AsId(2), AsId(4))));
    }

    #[test]
    fn bidirectional_failure_detected() {
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        env.dp.failures_mut().add(Failure::silent_as(AsId(5)));
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        assert_eq!(report.direction, FailureDirection::Bidirectional);
        assert_eq!(report.blamed_as(), Some(AsId(5)), "report: {report:?}");
    }

    #[test]
    fn no_failure_short_circuits() {
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        assert_eq!(report.direction, FailureDirection::NoFailure);
        assert!(report.blame.is_none());
    }

    #[test]
    fn elapsed_time_matches_paper_scale() {
        // Reverse isolations should land in the low hundreds of seconds
        // (the paper reports a 140 s average).
        let (net, s, d, vps) = world();
        let mut env = setup(&net, s, d);
        env.dp
            .failures_mut()
            .add(Failure::silent_as_toward(AsId(4), infra_prefix(s)));
        let iso = Isolator::new(vps);
        let report = iso.isolate(
            &env.dp,
            &mut env.prober,
            &env.atlas,
            &env.resp,
            Time::from_secs(100),
            s,
            d,
        );
        let secs = report.elapsed_ms / 1000;
        assert!((60..=300).contains(&secs), "elapsed {secs}s");
        // Probe budget should be on the order of a few hundred packets.
        assert!(report.probes_used.total() < 1000);
        assert!(report.probes_used.total() > 10);
    }

    /// Direct tests of the reachability-horizon scan over handcrafted
    /// atlas histories (the §4.1.2 pruning rules, including the §6-style
    /// case where the destination switched to an older, broken path after
    /// the last atlas refresh).
    mod blame_reverse_scan {
        use super::*;
        use lg_asmap::RouterId;
        use lg_atlas::{PathKind, PathRecord};

        const SRC: AsId = AsId(0);
        const DST: AsId = AsId(9);

        fn record(atlas: &mut Atlas, at_secs: u64, hops: &[u32]) {
            // Router-level reverse path [dst, ..., src].
            let routers: Vec<RouterId> = hops
                .windows(2)
                .map(|w| RouterId::border(AsId(w[1]), AsId(w[0])))
                .collect();
            let mut full = vec![RouterId::internal(AsId(hops[0]))];
            full.extend(routers);
            atlas.record(
                PathKind::Reverse,
                SRC,
                DST,
                PathRecord {
                    measured_at: lg_sim::Time::from_secs(at_secs),
                    hops: full,
                },
            );
        }

        fn iso() -> Isolator {
            Isolator::new(vec![])
        }

        #[test]
        fn horizon_on_newest_path() {
            let mut atlas = Atlas::default();
            // Reverse path 9 -> 5 -> 3 -> 0.
            record(&mut atlas, 10, &[9, 5, 3, 0]);
            let (blame, horizon) =
                iso().blame_reverse(&atlas, SRC, DST, &[AsId(3)], &[AsId(5), AsId(9)]);
            assert_eq!(blame, Some(Blame::As(AsId(5))));
            assert_eq!(horizon, Some((AsId(5), AsId(3))));
        }

        #[test]
        fn healthy_newest_path_falls_back_to_older_one() {
            // The §6 shape: the newest recorded path (via 5) is entirely
            // healthy, but the destination silently switched to the older
            // path via 7, which is broken.
            let mut atlas = Atlas::default();
            record(&mut atlas, 10, &[9, 7, 3, 0]); // older, via AS7
            record(&mut atlas, 20, &[9, 5, 3, 0]); // newest, via AS5
            let reachable = [AsId(3), AsId(5)];
            let unreachable = [AsId(7), AsId(9)];
            let (blame, horizon) = iso().blame_reverse(&atlas, SRC, DST, &reachable, &unreachable);
            assert_eq!(
                blame,
                Some(Blame::As(AsId(7))),
                "older path names the culprit"
            );
            assert_eq!(horizon, Some((AsId(7), AsId(3))));
        }

        #[test]
        fn destination_blamed_only_as_last_resort() {
            let mut atlas = Atlas::default();
            record(&mut atlas, 20, &[9, 5, 3, 0]);
            // Everything reachable except the destination itself.
            let (blame, horizon) =
                iso().blame_reverse(&atlas, SRC, DST, &[AsId(3), AsId(5)], &[AsId(9)]);
            assert_eq!(blame, Some(Blame::As(DST)));
            assert_eq!(horizon, Some((DST, AsId(5))));
        }

        #[test]
        fn never_responsive_hops_are_skipped() {
            let mut atlas = Atlas::default();
            record(&mut atlas, 20, &[9, 7, 5, 3, 0]);
            // AS5 is unclassifiable (in neither set); AS7 is the horizon.
            let (blame, _) = iso().blame_reverse(&atlas, SRC, DST, &[AsId(3)], &[AsId(7), AsId(9)]);
            assert_eq!(blame, Some(Blame::As(AsId(7))));
        }

        #[test]
        fn no_history_no_blame() {
            let atlas = Atlas::default();
            let (blame, horizon) = iso().blame_reverse(&atlas, SRC, DST, &[], &[AsId(5)]);
            assert_eq!(blame, None);
            assert_eq!(horizon, None);
        }
    }

    #[test]
    fn unresponsive_hop_is_not_blamed() {
        let (net, s, d, vps) = world();
        // C2 never answers probes (configured silent): with a reverse
        // failure *beyond* it (in T2), blame must skip C2 and land on T2.
        let mut dp = DataPlane::new(&net);
        dp.ensure_infra_all();
        let mut prober = Prober::with_defaults();
        prober.set_unresponsive(AsId(4));
        let mut atlas = Atlas::default();
        let mut resp = ResponsivenessDb::new();
        let mut pairs = vec![(s, d)];
        for a in net.graph().ases() {
            if a != s {
                pairs.push((s, a));
            }
        }
        let mut sched = RefreshScheduler::new(pairs, 60_000);
        sched.refresh_due(&dp, &mut prober, &mut atlas, &mut resp, Time::ZERO);
        // Now the reverse failure in T2 (AS5) toward S.
        dp.failures_mut()
            .add(Failure::silent_as_toward(AsId(5), infra_prefix(s)));
        let iso = Isolator::new(vps);
        let report = iso.isolate(&dp, &mut prober, &atlas, &resp, Time::from_secs(100), s, d);
        assert_eq!(report.direction, FailureDirection::Reverse);
        assert_eq!(report.blamed_as(), Some(AsId(5)), "report: {report:?}");
        assert!(
            !report.suspects.contains(&AsId(4)),
            "silent C2 must not be a suspect"
        );
    }
}
